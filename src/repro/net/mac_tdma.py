"""Round-robin TDMA with fixed-duration slots.

The paper's design example (Sec. 4.1) assigns 1 ms slots equally to all
nodes in round-robin fashion.  The schedule assumes a globally synchronized
clock (the paper's Remark notes that maintaining it is the protocol's main
practical cost); the simulator grants perfect synchronization, so TDMA
never collides — its losses come only from the channel, exactly the
deterministic-communication behaviour that makes TDMA attractive for
reliability-critical configurations.

A node may transmit one queued packet per owned slot; the packet airtime
must fit within a slot (checked at construction — with Table 1's CC2650 and
100-byte packets, Tpkt ≈ 0.78 ms < 1 ms).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.des.engine import Event, Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import MacOptions
from repro.net.mac_base import MacBase
from repro.net.radio import Radio
from repro.net.stats import NodeStats


class TdmaMac(MacBase):
    """TDMA MAC: transmit only at the start of owned slots.

    Parameters
    ----------
    slot_index:
        This node's position in the frame (0-based).
    num_slots:
        Frame length in slots (= number of nodes in the network).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        options: MacOptions,
        stats: NodeStats,
        rng: RngStreams,
        slot_index: int,
        num_slots: int,
    ) -> None:
        super().__init__(sim, radio, options, stats, rng)
        if not (0 <= slot_index < num_slots):
            raise ValueError(
                f"slot index {slot_index} out of range for {num_slots} slots"
            )
        self.slot_index = slot_index
        self.num_slots = num_slots
        self._slot_event: Optional[Event] = None

    @property
    def frame_s(self) -> float:
        return self.num_slots * self.options.slot_s

    def next_own_slot_time(self, now: float) -> float:
        """Start time of the next slot owned by this node, strictly after
        (or at) ``now`` with a small epsilon guard so that a packet queued
        exactly on a slot boundary still uses that slot."""
        offset = self.slot_index * self.options.slot_s
        frame = self.frame_s
        k = math.ceil((now - offset - 1e-12) / frame)
        t = offset + max(0, k) * frame
        if t < now - 1e-12:
            t += frame
        return t

    def _kick(self) -> None:
        if not self.queue or self._in_flight is not None:
            return
        if self._slot_event is not None and self._slot_event.pending:
            return
        t = self.next_own_slot_time(self.sim.now)
        self._slot_event = self.sim.schedule_at(t, self._slot_start)

    def _slot_start(self) -> None:
        self._slot_event = None
        if not self.queue or self._in_flight is not None:
            return
        packet = self.queue[0]
        airtime = self.radio.spec.packet_airtime_s(packet.length_bytes)
        if airtime > self.options.slot_s + 1e-12:
            raise ValueError(
                f"packet airtime {airtime * 1e3:.3f} ms exceeds the TDMA slot "
                f"of {self.options.slot_s * 1e3:.3f} ms"
            )
        self._start_transmission()
