"""Whole-network assembly and simulation entry points.

:class:`Network` builds a complete Human Intranet simulation — channel,
medium, and one :class:`repro.net.node.Node` per occupied location — from
explicit component choices, runs it for T_sim seconds, and reports a
:class:`SimulationOutcome` with the paper's metrics (Eqs. 4, 6, 7).

:func:`simulate_configuration` adds the paper's averaging protocol
(Sec. 4: metrics averaged over several runs to mitigate randomness) by
running independent replicates with disjoint random streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.channel.body import BodyModel
from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.channel.pathloss import PathLossParameters
from repro.channel.posture import PostureParameters
from repro.des.engine import Simulator
from repro.des.monitor import TraceLog
from repro.des.rng import RngStreams
from repro.library.batteries import COORDINATOR_PACK, CR2032, BatterySpec
from repro.library.mac_options import MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import RadioSpec, TxMode
from repro.net.app import AppParameters
from repro.net.node import Node
from repro.net.radio import Medium
from repro.net.stats import NetworkStats
from repro.obs import runtime as obs_runtime


@dataclass
class SimulationOutcome:
    """Metrics extracted from one simulation run (or replicate average).

    ``pdr`` is the network PDR of Eq. 7 in [0, 1]; ``worst_power_mw`` is
    the maximum average power among battery-limited (non-coordinator)
    nodes, the quantity Algorithm 1 compares with its MILP estimate;
    ``nlt_days`` is Eq. 4 evaluated with the node battery.
    """

    pdr: float
    node_pdrs: Dict[int, float]
    node_powers_mw: Dict[int, float]
    worst_power_mw: float
    nlt_days: float
    horizon_s: float
    totals: Dict[str, int] = field(default_factory=dict)
    events_executed: int = 0
    replicates: int = 1
    #: Mean end-to-end delivery latency over all delivered payloads (s);
    #: 0.0 when nothing was delivered.  Star pays the coordinator relay,
    #: TDMA pays slot waiting, CSMA pays backoffs — a secondary metric the
    #: paper does not evaluate but any deployment asks about.
    mean_latency_s: float = 0.0
    #: Time-resolved network delivery ratio, ``((bin_end_s, pdr-or-None),
    #: ...)``, keyed by payload *generation* time — populated only for
    #: fault-injected runs (see :meth:`repro.net.stats.NetworkStats.
    #: windowed_pdr`); empty for healthy runs.
    windowed_pdr: Tuple[Tuple[float, Optional[float]], ...] = ()

    @property
    def pdr_percent(self) -> float:
        return 100.0 * self.pdr


class Network:
    """A fully wired Human Intranet instance.

    Parameters
    ----------
    placement:
        Occupied body locations (the ν vector's support).
    radio_spec, tx_mode:
        χ_rd: the radio chip and its selected transmit operating point.
    mac_options, routing_options, app_params:
        χ_MAC, χ_rt, χ_app.
    battery:
        Energy store of battery-limited nodes (CR2032 in the paper).
    seed, replicate:
        Random-stream identity for this run.
    body, pathloss_params, fading_params:
        Channel model configuration (defaults reproduce the paper setup).
    trace:
        Enable structured event tracing (tests/debugging only).
    fault_scenario:
        Optional :class:`repro.faults.model.FaultScenario`.  Its faults
        that apply to this placement are compiled into simulator events;
        time-binned PDR accounting is switched on so the outcome carries
        a ``windowed_pdr`` series.  ``None`` (the default) builds the
        healthy network with zero fault machinery on any hot path.
    """

    #: Generation-time bin width for fault-injected runs (seconds).  One
    #: second resolves recovery transients at the paper's φ = 10 pkt/s
    #: (≈ 10 payloads per node per bin) without ballooning the outcome.
    FAULT_WINDOW_S = 1.0

    def __init__(
        self,
        placement: Sequence[int],
        radio_spec: RadioSpec,
        tx_mode: TxMode,
        mac_options: MacOptions,
        routing_options: RoutingOptions,
        app_params: AppParameters,
        battery: BatterySpec = CR2032,
        coordinator_battery: BatterySpec = COORDINATOR_PACK,
        seed: int = 0,
        replicate: int = 0,
        body: Optional[BodyModel] = None,
        pathloss_params: Optional[PathLossParameters] = None,
        fading_params: Optional[FadingParameters] = None,
        posture_params: Optional[PostureParameters] = None,
        trace: bool = False,
        fault_scenario=None,
    ) -> None:
        placement = tuple(sorted(set(placement)))
        if len(placement) < 2:
            raise ValueError("a network needs at least two nodes")
        if routing_options.kind is RoutingKind.STAR and (
            routing_options.coordinator not in placement
        ):
            raise ValueError(
                f"star coordinator location {routing_options.coordinator} "
                f"is not part of the placement {placement}"
            )
        self.placement = placement
        self.radio_spec = radio_spec
        self.tx_mode = tx_mode
        self.mac_options = mac_options
        self.routing_options = routing_options
        self.app_params = app_params
        self.battery = battery
        self.coordinator_battery = coordinator_battery

        self.sim = Simulator()
        self.rng = RngStreams(seed=seed, replicate=replicate)
        self.trace = TraceLog(enabled=trace)
        channel = Channel(
            self.rng, body=body, pathloss_params=pathloss_params,
            fading_params=fading_params, posture_params=posture_params,
        )
        self.channel = channel

        self.fault_scenario = fault_scenario
        self._fault_injector = None
        self.fault_state = None
        if fault_scenario is not None and fault_scenario.applicable(placement):
            # Imported lazily: repro.faults pulls in the resilience layer,
            # which imports the oracle, which imports this module.
            from repro.faults.injector import FaultInjector

            self._fault_injector = FaultInjector(self, fault_scenario)
            self.fault_state = self._fault_injector.state

        self.medium = Medium(
            self.sim, channel, self.trace, faults=self.fault_state,
            # The lowest threshold any MAC will carrier-sense with; lets
            # the medium prove which link pairs are never observable and
            # skip their fading draws (see Medium docstring).
            carrier_sense_floor_dbm=mac_options.carrier_sense_dbm,
        )
        self.stats = NetworkStats(list(placement))
        if self._fault_injector is not None:
            self.stats.enable_windows(self.FAULT_WINDOW_S)

        self.nodes: Dict[int, Node] = {}
        for slot_index, loc in enumerate(placement):
            peers = [p for p in placement if p != loc]
            self.nodes[loc] = Node(
                sim=self.sim,
                medium=self.medium,
                location=loc,
                peers=peers,
                radio_spec=radio_spec,
                tx_mode=tx_mode,
                mac_options=mac_options,
                routing_options=routing_options,
                app_params=app_params,
                stats=self.stats.node(loc),
                rng=self.rng,
                slot_index=slot_index,
                num_slots=len(placement),
            )

        if self._fault_injector is not None:
            self._fault_injector.install()

    @property
    def coordinator_locations(self) -> Set[int]:
        """Locations excluded from the lifetime minimum (Eq. 4): the star
        coordinator has a larger energy store (Sec. 4.1)."""
        if self.routing_options.kind is RoutingKind.STAR:
            return {self.routing_options.coordinator}
        return set()

    def run(self, tsim_s: float, drain_s: float = 0.5) -> SimulationOutcome:
        """Simulate for ``tsim_s`` seconds and extract the metrics.

        Traffic generation stops at ``tsim_s`` and the network is given
        ``drain_s`` extra seconds to flush in-flight packets, so the PDR
        estimator is not biased by payloads truncated at the horizon.
        Power is normalized over the generation horizon.
        """
        if tsim_s <= 0:
            raise ValueError("simulation horizon must be positive")
        for node in self.nodes.values():
            node.app.stop_generation_at(tsim_s)
        self.sim.run(until=tsim_s + drain_s)

        node_pdrs = {loc: self.stats.node_pdr(loc) for loc in self.placement}
        exclude = self.coordinator_locations
        tx_mw = self.tx_mode.power_mw
        rx_mw = self.radio_spec.rx_power_mw
        baseline = self.app_params.baseline_mw
        node_powers = {
            loc: self.stats.node_power_mw(loc, tsim_s, tx_mw, rx_mw, baseline)
            for loc in self.placement
        }
        windowed: Tuple[Tuple[float, Optional[float]], ...] = ()
        if self.fault_state is not None:
            # Battery-drain faults deplete energy faster without changing
            # traffic: fold them in as an equivalent average-power scaling.
            node_powers = {
                loc: power * self.fault_state.power_scale(loc, tsim_s)
                for loc, power in node_powers.items()
            }
            windowed = self.stats.windowed_pdr(tsim_s)
        candidates = [loc for loc in self.placement if loc not in exclude]
        if not candidates:
            raise ValueError("no battery-limited nodes")
        worst = max(node_powers[loc] for loc in candidates)
        nlt_days = self.battery.lifetime_days(worst)
        deliveries = sum(s.deliveries for s in self.stats.nodes.values())
        latency_total = sum(s.latency_sum for s in self.stats.nodes.values())
        obs = obs_runtime.get_active()
        if obs.tracing:
            # Per-node energy trajectory at teardown (Fitzgerald et al.'s
            # lifetime view): average power per location over the horizon.
            obs.event(
                "des.teardown",
                placement=list(self.placement),
                events=self.sim.events_executed,
                node_powers_mw={str(k): v for k, v in node_powers.items()},
                node_pdrs={str(k): v for k, v in node_pdrs.items()},
                worst_power_mw=worst,
                nlt_days=nlt_days,
                fault_scenario=(
                    self.fault_scenario.name
                    if self.fault_scenario is not None
                    else None
                ),
            )
        return SimulationOutcome(
            pdr=self.stats.network_pdr(),
            node_pdrs=node_pdrs,
            node_powers_mw=node_powers,
            worst_power_mw=worst,
            nlt_days=nlt_days,
            horizon_s=tsim_s,
            totals=self.stats.totals(),
            events_executed=self.sim.events_executed,
            mean_latency_s=latency_total / deliveries if deliveries else 0.0,
            windowed_pdr=windowed,
        )


def simulate_configuration(
    placement: Sequence[int],
    radio_spec: RadioSpec,
    tx_mode: TxMode,
    mac_options: MacOptions,
    routing_options: RoutingOptions,
    app_params: AppParameters,
    tsim_s: float,
    replicates: int = 3,
    seed: int = 0,
    battery: BatterySpec = CR2032,
    body: Optional[BodyModel] = None,
    pathloss_params: Optional[PathLossParameters] = None,
    fading_params: Optional[FadingParameters] = None,
    posture_params: Optional[PostureParameters] = None,
    fault_scenario=None,
) -> SimulationOutcome:
    """Run ``replicates`` independent simulations and average the metrics.

    This is the paper's evaluation protocol: T_sim = 600 s averaged over 3
    runs gave performance estimates within 0.5% relative error (Sec. 4).
    Replicates use disjoint random streams derived from the same seed.
    """
    if replicates < 1:
        raise ValueError("need at least one replicate")
    outcomes: List[SimulationOutcome] = []
    for rep in range(replicates):
        outcomes.append(
            simulate_replicate(
                placement=placement,
                radio_spec=radio_spec,
                tx_mode=tx_mode,
                mac_options=mac_options,
                routing_options=routing_options,
                app_params=app_params,
                tsim_s=tsim_s,
                replicate=rep,
                seed=seed,
                battery=battery,
                body=body,
                pathloss_params=pathloss_params,
                fading_params=fading_params,
                posture_params=posture_params,
                fault_scenario=fault_scenario,
            )
        )
    return average_outcomes(outcomes, battery)


def simulate_replicate(
    placement: Sequence[int],
    radio_spec: RadioSpec,
    tx_mode: TxMode,
    mac_options: MacOptions,
    routing_options: RoutingOptions,
    app_params: AppParameters,
    tsim_s: float,
    replicate: int,
    seed: int = 0,
    battery: BatterySpec = CR2032,
    body: Optional[BodyModel] = None,
    pathloss_params: Optional[PathLossParameters] = None,
    fading_params: Optional[FadingParameters] = None,
    posture_params: Optional[PostureParameters] = None,
    fault_scenario=None,
) -> SimulationOutcome:
    """One independent replicate (disjoint random streams per index)."""
    network = Network(
        placement=placement,
        radio_spec=radio_spec,
        tx_mode=tx_mode,
        mac_options=mac_options,
        routing_options=routing_options,
        app_params=app_params,
        battery=battery,
        seed=seed,
        replicate=replicate,
        body=body,
        pathloss_params=pathloss_params,
        fading_params=fading_params,
        posture_params=posture_params,
        fault_scenario=fault_scenario,
    )
    return network.run(tsim_s)


@dataclass(frozen=True)
class ReplicateJob:
    """Picklable description of one replicate simulation.

    This is the unit of work shipped to :class:`ProcessPoolExecutor`
    workers by :mod:`repro.core.parallel`: every field is a frozen
    dataclass (or primitive), so the job crosses a process boundary
    cheaply, and :meth:`run` is a pure function of the job — the same job
    produces the same :class:`SimulationOutcome` in any process, because
    all randomness derives from the ``(seed, replicate)`` pair.
    """

    placement: Sequence[int]
    radio_spec: RadioSpec
    tx_mode: TxMode
    mac_options: MacOptions
    routing_options: RoutingOptions
    app_params: AppParameters
    tsim_s: float
    replicate: int
    seed: int = 0
    battery: BatterySpec = CR2032
    body: Optional[BodyModel] = None
    pathloss_params: Optional[PathLossParameters] = None
    fading_params: Optional[FadingParameters] = None
    posture_params: Optional[PostureParameters] = None
    #: Frozen FaultScenario (or None); frozen dataclasses pickle cleanly.
    fault_scenario: Optional[object] = None

    def run(self) -> SimulationOutcome:
        return simulate_replicate(
            placement=self.placement,
            radio_spec=self.radio_spec,
            tx_mode=self.tx_mode,
            mac_options=self.mac_options,
            routing_options=self.routing_options,
            app_params=self.app_params,
            tsim_s=self.tsim_s,
            replicate=self.replicate,
            seed=self.seed,
            battery=self.battery,
            body=self.body,
            pathloss_params=self.pathloss_params,
            fading_params=self.fading_params,
            posture_params=self.posture_params,
            fault_scenario=self.fault_scenario,
        )


def run_replicate_job(job: ReplicateJob) -> SimulationOutcome:
    """Module-level executor entry point (bound methods don't pickle)."""
    return job.run()


def average_outcomes(
    outcomes: Sequence[SimulationOutcome], battery: BatterySpec = CR2032
) -> SimulationOutcome:
    """Average replicate outcomes into one report (the paper's protocol)."""
    if not outcomes:
        raise ValueError("need at least one outcome to average")
    locations = tuple(sorted(outcomes[0].node_pdrs))
    n = len(outcomes)
    mean_pdr = sum(o.pdr for o in outcomes) / n
    node_pdrs = {
        loc: sum(o.node_pdrs[loc] for o in outcomes) / n for loc in locations
    }
    node_powers = {
        loc: sum(o.node_powers_mw[loc] for o in outcomes) / n for loc in locations
    }
    worst = sum(o.worst_power_mw for o in outcomes) / n
    totals: Dict[str, int] = {}
    for o in outcomes:
        for key, value in o.totals.items():
            totals[key] = totals.get(key, 0) + value
    windowed: Tuple[Tuple[float, Optional[float]], ...] = ()
    if outcomes[0].windowed_pdr:
        # Average each generation-time bin over the replicates that
        # observed traffic in it; a bin empty in every replicate stays
        # None rather than polluting the mean with zeros.
        bins = []
        for i, (t_end, _ratio) in enumerate(outcomes[0].windowed_pdr):
            values = [
                o.windowed_pdr[i][1]
                for o in outcomes
                if i < len(o.windowed_pdr) and o.windowed_pdr[i][1] is not None
            ]
            bins.append((t_end, sum(values) / len(values) if values else None))
        windowed = tuple(bins)
    return SimulationOutcome(
        pdr=mean_pdr,
        node_pdrs=node_pdrs,
        node_powers_mw=node_powers,
        worst_power_mw=worst,
        nlt_days=battery.lifetime_days(worst),
        horizon_s=outcomes[0].horizon_s,
        totals=totals,
        events_executed=sum(o.events_executed for o in outcomes),
        replicates=n,
        mean_latency_s=sum(o.mean_latency_s for o in outcomes) / n,
        windowed_pdr=windowed,
    )
