"""Node assembly: wiring the four layers of the paper's Fig. 1 together."""

from __future__ import annotations

from typing import List, Union

from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import RadioSpec, TxMode
from repro.net.app import Application, AppParameters
from repro.net.mac_csma import CsmaMac
from repro.net.mac_tdma import TdmaMac
from repro.net.radio import Medium, Radio
from repro.net.routing_flood import FloodRouting
from repro.net.routing_p2p import P2pRouting
from repro.net.routing_star import StarRouting
from repro.net.stats import NodeStats


class Node:
    """One Human Intranet node: radio + MAC + routing + application.

    Construction wires the upward path (radio → routing → application) and
    the downward path (application → routing → MAC → radio).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        location: int,
        peers: List[int],
        radio_spec: RadioSpec,
        tx_mode: TxMode,
        mac_options: MacOptions,
        routing_options: RoutingOptions,
        app_params: AppParameters,
        stats: NodeStats,
        rng: RngStreams,
        slot_index: int,
        num_slots: int,
    ) -> None:
        self.location = location
        self.stats = stats
        self.radio = Radio(sim, medium, location, radio_spec, tx_mode, stats)

        if mac_options.kind is MacKind.CSMA:
            self.mac: Union[CsmaMac, TdmaMac] = CsmaMac(
                sim, self.radio, mac_options, stats, rng
            )
        else:
            self.mac = TdmaMac(
                sim, self.radio, mac_options, stats, rng, slot_index, num_slots
            )

        if routing_options.kind is RoutingKind.STAR:
            self.routing: Union[StarRouting, FloodRouting, P2pRouting] = (
                StarRouting(sim, self.mac, routing_options, stats, rng)
            )
        elif routing_options.kind is RoutingKind.P2P:
            self.routing = P2pRouting(
                sim, self.mac, routing_options, stats, rng,
                placement=[location] + list(peers),
            )
        else:
            self.routing = FloodRouting(sim, self.mac, routing_options, stats, rng)

        self.app = Application(
            sim, location, peers, app_params, stats, rng, self.routing.send
        )

        # Upward wiring.
        self.radio.on_receive = self.routing.on_receive
        self.routing.deliver_up = self.app.on_receive

    # -- fault hooks ------------------------------------------------------------

    def fail(self, permanent: bool = False) -> None:
        """Take this node down (fault injection).  The radio goes dark;
        for a permanent death the application also stops producing
        payloads (a transient outage keeps generating so that PDR
        reflects the traffic lost during the blackout)."""
        self.radio.fail()
        if permanent:
            self.app.halt()

    def recover(self) -> None:
        """Bring the node's radio back after a transient outage."""
        self.radio.recover()

    @property
    def is_coordinator(self) -> bool:
        return (
            isinstance(self.routing, StarRouting) and self.routing.is_coordinator
        )

    def __repr__(self) -> str:
        mac = type(self.mac).__name__
        routing = type(self.routing).__name__
        return f"Node(loc={self.location}, {mac}, {routing})"
