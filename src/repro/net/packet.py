"""Packets and their routing metadata.

A packet models one application payload travelling through the network.
The routing-relevant fields mirror Sec. 2.1.2: mesh flooding increments a
hop counter on every relay and carries the history of visited nodes, which
together bound the total number of transmissions per packet (N_reTx).

Packets are identified by ``(origin, seq)``; relayed copies share that
identity, so the application layer counts *unique* deliveries as required
by the PDR estimator (Eq. 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

_copy_counter = itertools.count()


@dataclass(frozen=True)
class Packet:
    """One (possibly relayed) copy of an application packet.

    Attributes
    ----------
    origin:
        Location index of the node that generated the payload.
    seq:
        Per-origin sequence number (application layer, Sec. 2.1.2).
    destination:
        Location index of the final destination.
    length_bytes:
        L — physical-layer packet length, sets the airtime Tpkt = 8L/BR.
    hops_used:
        Number of relays this copy has undergone (0 for the original
        transmission from the origin).
    visited:
        History of nodes this copy has been relayed by (including the
        origin); a node never relays a copy whose history contains itself.
    relayer:
        The node currently transmitting this copy (origin for hops_used=0).
    created_at:
        Simulation time the payload was generated (for latency stats).
    copy_id:
        Unique id of this physical copy, used only for tracing.
    """

    origin: int
    seq: int
    destination: int
    length_bytes: int
    hops_used: int = 0
    visited: FrozenSet[int] = field(default_factory=frozenset)
    relayer: Optional[int] = None
    created_at: float = 0.0
    #: Intended receiver of this copy in point-to-point forwarding (None
    #: for broadcast schemes: star and controlled flooding).
    next_hop: Optional[int] = None
    copy_id: int = field(default_factory=lambda: next(_copy_counter))

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError("packet length must be positive")
        if self.hops_used < 0:
            raise ValueError("hop count cannot be negative")

    @property
    def uid(self) -> tuple:
        """Application-level identity shared by all copies of a payload."""
        return (self.origin, self.seq)

    def relayed_by(self, node: int) -> "Packet":
        """A new copy as rebroadcast by ``node``: hop counter incremented,
        node appended to the visited history."""
        # Direct construction instead of dataclasses.replace: copies are
        # minted once per relay on the hot path, and replace() pays a
        # fields() walk per call.
        return Packet(
            origin=self.origin,
            seq=self.seq,
            destination=self.destination,
            length_bytes=self.length_bytes,
            hops_used=self.hops_used + 1,
            visited=self.visited | {node},
            relayer=node,
            created_at=self.created_at,
            next_hop=self.next_hop,
            copy_id=next(_copy_counter),
        )

    def originated(self) -> "Packet":
        """The original transmission copy: origin in the visited set and
        marked as the current relayer."""
        return Packet(
            origin=self.origin,
            seq=self.seq,
            destination=self.destination,
            length_bytes=self.length_bytes,
            hops_used=self.hops_used,
            visited=self.visited | {self.origin},
            relayer=self.origin,
            created_at=self.created_at,
            next_hop=self.next_hop,
            copy_id=next(_copy_counter),
        )

    def __repr__(self) -> str:
        return (
            f"Packet({self.origin}->{self.destination} seq={self.seq} "
            f"hops={self.hops_used} via={self.relayer})"
        )
