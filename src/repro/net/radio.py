"""Physical layer: broadcast radios over the shared body channel.

Reception follows the paper's link-budget condition — a packet from i is
decodable at j when ``Tx_dBm − PL(i,j,t) ≥ Rx_sensitivity`` — augmented
with the second-order effects the discrete-event simulator exists to
capture (Sec. 2.2):

* **Collisions.** Two transmissions overlapping in time interfere at a
  common receiver.  The stronger one survives if it exceeds the strongest
  interferer by the capture threshold (10 dB, typical of 2.4 GHz PHYs);
  otherwise both are lost at that receiver.
* **Half duplex.** A transmitting radio cannot receive; any packet arriving
  while a node transmits is lost at that node.
* **Energy.** A radio burns TX power for the packet airtime when sending
  and RX power for the airtime of every decodable arrival it locks onto
  (whether or not the packet survives interference).  Arrivals below
  sensitivity never wake the receive chain and cost nothing, matching the
  duty-cycled receiver model behind Eq. 3.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Optional

from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.monitor import TraceLog
from repro.library.radios import RadioSpec, TxMode
from repro.net.packet import Packet
from repro.net.stats import NodeStats

#: SIR (dB) by which a packet must exceed the strongest overlapping
#: interferer to be captured.
CAPTURE_THRESHOLD_DB = 10.0


class RadioState(enum.Enum):
    SLEEP = "sleep"
    TX = "tx"
    RX = "rx"


class _Transmission:
    """Bookkeeping for one on-air packet copy."""

    __slots__ = (
        "sender",
        "packet",
        "start",
        "end",
        "tx_dbm",
        "rx_power",
        "interference",
    )

    def __init__(
        self,
        sender: int,
        packet: Packet,
        start: float,
        end: float,
        tx_dbm: float,
        rx_power: Dict[int, float],
    ) -> None:
        self.sender = sender
        self.packet = packet
        self.start = start
        self.end = end
        self.tx_dbm = tx_dbm
        #: received power at each other node, sampled at transmission start.
        self.rx_power = rx_power
        #: strongest interferer power seen at each receiver (−inf if none).
        self.interference: Dict[int, float] = {}

    def note_interference(self, receiver: int, power_dbm: float) -> None:
        current = self.interference.get(receiver, -math.inf)
        if power_dbm > current:
            self.interference[receiver] = power_dbm


class Medium:
    """The shared wireless medium connecting all radios of one network.

    ``faults`` is an optional fault-state object (see
    :class:`repro.faults.injector.FaultState`) consulted on the hot path
    through two narrow hooks: ``link_blocked(a, b)`` forces the received
    power of a blacked-out pair below sensitivity, and a failed radio
    (``radio.failed``) neither senses, receives, nor reaches the medium.
    Healthy networks pass ``None`` and pay nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        trace: Optional[TraceLog] = None,
        faults=None,
    ):
        self.sim = sim
        self.channel = channel
        # Explicit None check: TraceLog has __len__, so an (empty) enabled
        # log is falsy and `trace or ...` would silently discard it.
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.faults = faults
        self._radios: Dict[int, "Radio"] = {}
        self._active: List[_Transmission] = []

    def register(self, radio: "Radio") -> None:
        if radio.location in self._radios:
            raise ValueError(f"two radios registered at location {radio.location}")
        self._radios[radio.location] = radio

    @property
    def radios(self) -> Dict[int, "Radio"]:
        return dict(self._radios)

    # -- carrier sensing --------------------------------------------------------

    def sensed_busy(self, location: int, threshold_dbm: float) -> bool:
        """Whether a node at ``location`` currently senses energy above its
        carrier-sense threshold (uses powers sampled at each transmission's
        start; the fading coherence time far exceeds packet airtimes)."""
        if self._radios[location].failed:
            return False  # a dark radio senses nothing
        for tx in self._active:
            if tx.sender == location:
                return True
            power = tx.rx_power.get(location, -math.inf)
            if power >= threshold_dbm:
                return True
        return False

    # -- transmission lifecycle ----------------------------------------------------

    def begin_transmission(self, radio: "Radio", packet: Packet) -> float:
        """Start broadcasting ``packet`` from ``radio``; returns airtime."""
        now = self.sim.now
        airtime = radio.spec.packet_airtime_s(packet.length_bytes)
        rx_power: Dict[int, float] = {}
        blocked = self.faults.link_blocked if self.faults is not None else None
        for loc in self._radios:
            if loc == radio.location:
                continue
            if blocked is not None and blocked(radio.location, loc):
                # Blackout episode: the pair is in deep shadowing, below
                # sensitivity in both directions for the episode.
                rx_power[loc] = -math.inf
                continue
            rx_power[loc] = self.channel.received_power_dbm(
                radio.tx_mode.output_dbm, radio.location, loc, now
            )
        tx = _Transmission(
            radio.location, packet, now, now + airtime, radio.tx_mode.output_dbm,
            rx_power,
        )

        # Mutual interference with every overlapping transmission.
        for other in self._active:
            for loc in self._radios:
                if loc != tx.sender and loc != other.sender:
                    other.note_interference(loc, tx.rx_power.get(loc, -math.inf))
                    tx.note_interference(loc, other.rx_power.get(loc, -math.inf))
            # Half duplex: each transmitter destroys the other's copy at
            # its own location.
            other.note_interference(tx.sender, math.inf)
            tx.note_interference(other.sender, math.inf)

        self._active.append(tx)
        self.trace.log(now, "phy_tx_start", sender=tx.sender, packet=repr(packet))
        self.sim.schedule(airtime, self._finish_transmission, tx)
        return airtime

    def _finish_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        sender_radio = self._radios[tx.sender]
        sender_radio._transmission_ended(tx)
        duration = tx.end - tx.start
        for loc, radio in self._radios.items():
            if loc == tx.sender:
                continue
            if radio.failed:
                # A dark radio never wakes its receive chain: no RX
                # energy, no delivery.
                radio.stats.fault_rx_suppressed += 1
                continue
            power = tx.rx_power[loc]
            if power < radio.spec.sensitivity_dbm:
                radio.stats.below_sensitivity += 1
                continue
            # The receive chain locked onto this arrival: pay RX energy.
            radio.stats.rx_seconds += duration
            interference = tx.interference.get(loc, -math.inf)
            if interference > -math.inf and power - interference < CAPTURE_THRESHOLD_DB:
                radio.stats.collisions_seen += 1
                self.trace.log(
                    self.sim.now, "phy_collision", receiver=loc, sender=tx.sender
                )
                continue
            radio.stats.receptions += 1
            self.trace.log(
                self.sim.now, "phy_rx", receiver=loc, sender=tx.sender,
                packet=repr(tx.packet),
            )
            radio.deliver(tx.packet, power)


class Radio:
    """One node's radio front end.

    The MAC layer calls :meth:`transmit`; the medium calls :meth:`deliver`
    for successfully decoded packets, which the radio hands up the stack
    through ``on_receive``.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        location: int,
        spec: RadioSpec,
        tx_mode: TxMode,
        stats: NodeStats,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.location = location
        self.spec = spec
        self.tx_mode = tx_mode
        self.stats = stats
        self.state = RadioState.SLEEP
        #: Fault-injection switch: a failed radio is electrically dark —
        #: it neither transmits onto the medium, receives, senses, nor
        #: draws radio energy.  Toggled by the fault injector only.
        self.failed = False
        self.on_receive: Optional[Callable[[Packet, float], None]] = None
        self.on_tx_done: Optional[Callable[[Packet], None]] = None
        medium.register(self)

    @property
    def is_transmitting(self) -> bool:
        return self.state is RadioState.TX

    # -- fault hooks ------------------------------------------------------------

    def fail(self) -> None:
        """Take the radio down (fault injection).  A transmission already
        on the air completes — airtimes are milliseconds, far below any
        meaningful fault timescale — but nothing new reaches the medium
        and nothing is received until :meth:`recover`."""
        self.failed = True

    def recover(self) -> None:
        """Bring the radio back up after a transient outage."""
        self.failed = False

    def transmit(self, packet: Packet) -> float:
        """Broadcast a packet copy; returns its airtime in seconds.

        The MAC layer must not call this while a transmission is in flight
        (half duplex is a protocol invariant, so violating it is a bug, not
        a simulated loss).
        """
        if self.state is RadioState.TX:
            raise RuntimeError(
                f"radio at location {self.location} is already transmitting"
            )
        if self.failed:
            # The MAC's state machine still sees its transmit attempt
            # complete after the nominal airtime — keeping TDMA slots and
            # CSMA cycles deterministic through an outage — but the packet
            # never reaches the medium and no energy is drawn.
            airtime = self.spec.packet_airtime_s(packet.length_bytes)
            self.state = RadioState.TX
            self.stats.fault_tx_suppressed += 1
            self.sim.schedule(airtime, self._void_transmission_ended, packet)
            return airtime
        self.state = RadioState.TX
        airtime = self.medium.begin_transmission(self, packet)
        self.stats.transmissions += 1
        self.stats.tx_seconds += airtime
        return airtime

    def _transmission_ended(self, tx) -> None:
        self.state = RadioState.SLEEP
        if self.on_tx_done is not None:
            self.on_tx_done(tx.packet)

    def _void_transmission_ended(self, packet: Packet) -> None:
        """Tail of a transmission suppressed by a radio fault."""
        self.state = RadioState.SLEEP
        if self.on_tx_done is not None:
            self.on_tx_done(packet)

    def deliver(self, packet: Packet, rssi_dbm: float) -> None:
        if self.on_receive is not None:
            self.on_receive(packet, rssi_dbm)
