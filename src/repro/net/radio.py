"""Physical layer: broadcast radios over the shared body channel.

Reception follows the paper's link-budget condition — a packet from i is
decodable at j when ``Tx_dBm − PL(i,j,t) ≥ Rx_sensitivity`` — augmented
with the second-order effects the discrete-event simulator exists to
capture (Sec. 2.2):

* **Collisions.** Two transmissions overlapping in time interfere at a
  common receiver.  The stronger one survives if it exceeds the strongest
  interferer by the capture threshold (10 dB, typical of 2.4 GHz PHYs);
  otherwise both are lost at that receiver.
* **Half duplex.** A transmitting radio cannot receive; any packet arriving
  while a node transmits is lost at that node.
* **Energy.** A radio burns TX power for the packet airtime when sending
  and RX power for the airtime of every decodable arrival it locks onto
  (whether or not the packet survives interference).  Arrivals below
  sensitivity never wake the receive chain and cost nothing, matching the
  duty-cycled receiver model behind Eq. 3.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.monitor import TraceLog
from repro.library.radios import RadioSpec, TxMode
from repro.net.packet import Packet
from repro.net.stats import NodeStats

#: SIR (dB) by which a packet must exceed the strongest overlapping
#: interferer to be captured.
CAPTURE_THRESHOLD_DB = 10.0


class RadioState(enum.Enum):
    SLEEP = "sleep"
    TX = "tx"
    RX = "rx"


class _Transmission:
    """Bookkeeping for one on-air packet copy."""

    __slots__ = (
        "sender",
        "packet",
        "start",
        "end",
        "tx_dbm",
        "rx_power",
        "interference",
    )

    def __init__(
        self,
        sender: int,
        packet: Packet,
        start: float,
        end: float,
        tx_dbm: float,
        rx_power: Dict[int, float],
    ) -> None:
        self.sender = sender
        self.packet = packet
        self.start = start
        self.end = end
        self.tx_dbm = tx_dbm
        #: received power at each other node, sampled at transmission start.
        self.rx_power = rx_power
        #: strongest interferer power seen at each receiver (−inf if none).
        self.interference: Dict[int, float] = {}

    def note_interference(self, receiver: int, power_dbm: float) -> None:
        current = self.interference.get(receiver, -math.inf)
        if power_dbm > current:
            self.interference[receiver] = power_dbm


class _FanoutPlan:
    """Per-sender precomputed reception geometry (see DESIGN.md §8).

    Everything deterministic about one sender's broadcast fan-out —
    receiver order, mean path losses, each receiver's radio object and
    sensitivity, and which pairs are provably unobservable — is computed
    once per (sender, tx-mode) and reused for every packet.  Plans are
    invalidated whenever a radio registers.
    """

    __slots__ = ("entries", "radios", "sens", "locs", "sens_py")

    def __init__(
        self,
        entries: List[Tuple[int, float, bool]],
        radios: List["Radio"],
        sens: "np.ndarray",
    ) -> None:
        self.entries = entries
        self.radios = radios
        self.sens = sens
        # Receiver order and sensitivities as plain Python objects, for
        # the scalar delivery loop and the rx-power dict construction.
        self.locs = tuple(e[0] for e in entries)
        self.sens_py = [float(s) for s in sens]


class Medium:
    """The shared wireless medium connecting all radios of one network.

    ``faults`` is an optional fault-state object (see
    :class:`repro.faults.injector.FaultState`) consulted on the hot path
    through two narrow hooks: ``link_blocked(a, b)`` forces the received
    power of a blacked-out pair below sensitivity, and a failed radio
    (``radio.failed``) neither senses, receives, nor reaches the medium.
    Healthy networks pass ``None`` and pay nothing.

    ``carrier_sense_floor_dbm`` is the lowest carrier-sense threshold any
    MAC in this network will ever pass to :meth:`sensed_busy`.  Supplying
    it enables the dead-pair skip: a pair whose best-case received power
    (mean path loss minus the fading clip) is below
    ``min(sensitivity, floor) − CAPTURE_THRESHOLD_DB`` in *both*
    directions can never decode, never trips carrier sense, and can never
    decide a capture comparison, so its fading draw is provably
    unobservable and is skipped.  Left ``None`` (the default), no pair is
    ever skipped.

    ``use_fast_path=False`` selects the original per-receiver reference
    implementation; the fast path must produce bit-identical results, and
    the A/B tests plus the ``repro.bench`` harness rely on both paths
    staying callable.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        trace: Optional[TraceLog] = None,
        faults=None,
        carrier_sense_floor_dbm: Optional[float] = None,
        use_fast_path: bool = True,
    ):
        self.sim = sim
        self.channel = channel
        # Explicit None check: TraceLog has __len__, so an (empty) enabled
        # log is falsy and `trace or ...` would silently discard it.
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.faults = faults
        self.carrier_sense_floor_dbm = carrier_sense_floor_dbm
        self.use_fast_path = use_fast_path
        self._radios: Dict[int, "Radio"] = {}
        self._active: List[_Transmission] = []
        self._plans: Dict[int, _FanoutPlan] = {}

    def register(self, radio: "Radio") -> None:
        if radio.location in self._radios:
            raise ValueError(f"two radios registered at location {radio.location}")
        self._radios[radio.location] = radio
        self._plans.clear()

    def _plan_for(self, radio: "Radio") -> _FanoutPlan:
        plan = self._plans.get(radio.location)
        if plan is None:
            plan = self._build_plan(radio)
            self._plans[radio.location] = plan
        return plan

    def _build_plan(self, radio: "Radio") -> _FanoutPlan:
        sender = radio.location
        channel = self.channel
        mean_pl = channel.mean_model.mean_path_loss
        gain = channel.max_fade_gain_db()
        cs_floor = self.carrier_sense_floor_dbm
        # Posture draws are time-keyed and shared across pairs, so no OU
        # draw is skippable while the posture process is active; without a
        # carrier-sense floor the skip is disabled outright.
        allow_skip = cs_floor is not None and channel.posture is None
        entries: List[Tuple[int, float, bool]] = []
        radios: List["Radio"] = []
        sens: List[float] = []
        for loc, other in self._radios.items():
            if loc == sender:
                continue
            mean = mean_pl(sender, loc)
            skip = False
            if allow_skip:
                # Dead in the sender→receiver direction...
                floor_out = min(other.spec.sensitivity_dbm, cs_floor)
                dead_out = (
                    radio.tx_mode.output_dbm - mean + gain
                    < floor_out - CAPTURE_THRESHOLD_DB
                )
                # ...and in the reverse direction, because the OU stream
                # is shared per unordered pair: skipping a draw for one
                # direction must not shift draws the other direction
                # would observe.
                floor_back = min(radio.spec.sensitivity_dbm, cs_floor)
                dead_back = (
                    other.tx_mode.output_dbm - mean_pl(loc, sender) + gain
                    < floor_back - CAPTURE_THRESHOLD_DB
                )
                skip = dead_out and dead_back
            entries.append((loc, mean, skip))
            radios.append(other)
            sens.append(other.spec.sensitivity_dbm)
        return _FanoutPlan(entries, radios, np.asarray(sens, dtype=np.float64))

    @property
    def radios(self) -> Dict[int, "Radio"]:
        return dict(self._radios)

    # -- carrier sensing --------------------------------------------------------

    def sensed_busy(self, location: int, threshold_dbm: float) -> bool:
        """Whether a node at ``location`` currently senses energy above its
        carrier-sense threshold (uses powers sampled at each transmission's
        start; the fading coherence time far exceeds packet airtimes)."""
        if self._radios[location].failed:
            return False  # a dark radio senses nothing
        for tx in self._active:
            if tx.sender == location:
                return True
            power = tx.rx_power.get(location, -math.inf)
            if power >= threshold_dbm:
                return True
        return False

    # -- transmission lifecycle ----------------------------------------------------

    def begin_transmission(self, radio: "Radio", packet: Packet) -> float:
        """Start broadcasting ``packet`` from ``radio``; returns airtime."""
        now = self.sim.now
        airtime = radio.spec.packet_airtime_s(packet.length_bytes)
        blocked = self.faults.link_blocked if self.faults is not None else None
        sender = radio.location
        if self.use_fast_path:
            plan = self._plan_for(radio)
            powers = self.channel.fanout_powers(
                sender, radio.tx_mode.output_dbm, plan.entries, now, blocked
            )
            rx_power = dict(zip(plan.locs, powers))
        else:
            # Reference path: per-receiver link-budget derivation, kept
            # callable for A/B bit-identity tests and benchmarks.
            rx_power = {}
            for loc in self._radios:
                if loc == sender:
                    continue
                if blocked is not None and blocked(sender, loc):
                    # Blackout episode: the pair is in deep shadowing,
                    # below sensitivity in both directions.
                    rx_power[loc] = -math.inf
                    continue
                rx_power[loc] = self.channel.received_power_dbm(
                    radio.tx_mode.output_dbm, sender, loc, now
                )
        tx = _Transmission(
            sender, packet, now, now + airtime, radio.tx_mode.output_dbm,
            rx_power,
        )

        # Mutual interference with every overlapping transmission.
        for other in self._active:
            other_rx = other.rx_power
            for loc in self._radios:
                if loc != sender and loc != other.sender:
                    other.note_interference(loc, rx_power.get(loc, -math.inf))
                    tx.note_interference(loc, other_rx.get(loc, -math.inf))
            # Half duplex: each transmitter destroys the other's copy at
            # its own location.
            other.note_interference(sender, math.inf)
            tx.note_interference(other.sender, math.inf)

        self._active.append(tx)
        if self.trace.enabled:
            self.trace.log(now, "phy_tx_start", sender=sender, packet=repr(packet))
        self.sim.schedule(airtime, self._finish_transmission, tx)
        return airtime

    def _finish_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        sender_radio = self._radios[tx.sender]
        sender_radio._transmission_ended(tx)
        if self.use_fast_path:
            self._deliver_fast(tx)
        else:
            self._deliver_reference(tx)

    def _deliver_reference(self, tx: _Transmission) -> None:
        """Original per-receiver decodability/capture resolution."""
        duration = tx.end - tx.start
        for loc, radio in self._radios.items():
            if loc == tx.sender:
                continue
            if radio.failed:
                # A dark radio never wakes its receive chain: no RX
                # energy, no delivery.
                radio.stats.fault_rx_suppressed += 1
                continue
            power = tx.rx_power[loc]
            if power < radio.spec.sensitivity_dbm:
                radio.stats.below_sensitivity += 1
                continue
            # The receive chain locked onto this arrival: pay RX energy.
            radio.stats.rx_seconds += duration
            interference = tx.interference.get(loc, -math.inf)
            if interference > -math.inf and power - interference < CAPTURE_THRESHOLD_DB:
                radio.stats.collisions_seen += 1
                self.trace.log(
                    self.sim.now, "phy_collision", receiver=loc, sender=tx.sender
                )
                continue
            radio.stats.receptions += 1
            self.trace.log(
                self.sim.now, "phy_rx", receiver=loc, sender=tx.sender,
                packet=repr(tx.packet),
            )
            radio.deliver(tx.packet, power)

    #: Receiver count at which :meth:`_deliver_fast` switches from the
    #: scalar loop to numpy masks.  Array setup costs ~2 µs per call,
    #: which only amortizes once the fan-out is wide; both branches make
    #: identical float64 comparisons, so the results are bit-equal.
    VECTOR_MIN_RECEIVERS = 8

    def _deliver_fast(self, tx: _Transmission) -> None:
        """Vectorized decodability/capture over all receivers at once.

        The boolean masks are computed with numpy (float64 comparisons
        are bit-identical to the scalar path); per-receiver effects —
        stats, traces, delivery — still run in registration order with
        the original Python floats, so nothing downstream ever sees a
        numpy scalar.
        """
        duration = tx.end - tx.start
        plan = self._plan_for(self._radios[tx.sender])
        entries = plan.entries
        n = len(entries)
        rx_power = tx.rx_power
        interf = tx.interference
        if n < self.VECTOR_MIN_RECEIVERS:
            self._deliver_scalar(tx, plan, duration)
            return
        powers = np.fromiter(
            (rx_power[e[0]] for e in entries), dtype=np.float64, count=n
        )
        if interf:
            ints = np.fromiter(
                (interf.get(e[0], -math.inf) for e in entries),
                dtype=np.float64,
                count=n,
            )
            with np.errstate(invalid="ignore"):
                # −inf − −inf → NaN, which correctly compares False.
                collided = (ints > -math.inf) & (
                    powers - ints < CAPTURE_THRESHOLD_DB
                )
        else:
            collided = None
        decodable = powers >= plan.sens
        trace = self.trace
        now = self.sim.now
        packet = tx.packet
        sender = tx.sender
        for k in range(n):
            radio = plan.radios[k]
            if radio.failed:
                # A dark radio never wakes its receive chain: no RX
                # energy, no delivery.
                radio.stats.fault_rx_suppressed += 1
                continue
            if not decodable[k]:
                radio.stats.below_sensitivity += 1
                continue
            stats = radio.stats
            # The receive chain locked onto this arrival: pay RX energy.
            stats.rx_seconds += duration
            loc = entries[k][0]
            if collided is not None and collided[k]:
                stats.collisions_seen += 1
                if trace.enabled:
                    trace.log(now, "phy_collision", receiver=loc, sender=sender)
                continue
            stats.receptions += 1
            if trace.enabled:
                trace.log(
                    now, "phy_rx", receiver=loc, sender=sender,
                    packet=repr(packet),
                )
            radio.deliver(packet, rx_power[loc])

    def _deliver_scalar(self, tx, plan, duration: float) -> None:
        """Plan-ordered delivery loop without array setup, for narrow
        fan-outs.  Decision-for-decision the same comparisons as the
        vectorized branch (and the reference loop), on the same floats."""
        rx_power = tx.rx_power
        interf = tx.interference
        trace = self.trace
        now = self.sim.now
        packet = tx.packet
        sender = tx.sender
        for loc, radio, sensitivity in zip(
            plan.locs, plan.radios, plan.sens_py
        ):
            if radio.failed:
                # A dark radio never wakes its receive chain: no RX
                # energy, no delivery.
                radio.stats.fault_rx_suppressed += 1
                continue
            power = rx_power[loc]
            stats = radio.stats
            if power < sensitivity:
                stats.below_sensitivity += 1
                continue
            # The receive chain locked onto this arrival: pay RX energy.
            stats.rx_seconds += duration
            if interf:
                interference = interf.get(loc, -math.inf)
                if (
                    interference > -math.inf
                    and power - interference < CAPTURE_THRESHOLD_DB
                ):
                    stats.collisions_seen += 1
                    if trace.enabled:
                        trace.log(
                            now, "phy_collision", receiver=loc, sender=sender
                        )
                    continue
            stats.receptions += 1
            if trace.enabled:
                trace.log(
                    now, "phy_rx", receiver=loc, sender=sender,
                    packet=repr(packet),
                )
            radio.deliver(packet, rx_power[loc])


class Radio:
    """One node's radio front end.

    The MAC layer calls :meth:`transmit`; the medium calls :meth:`deliver`
    for successfully decoded packets, which the radio hands up the stack
    through ``on_receive``.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        location: int,
        spec: RadioSpec,
        tx_mode: TxMode,
        stats: NodeStats,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.location = location
        self.spec = spec
        self.tx_mode = tx_mode
        self.stats = stats
        self.state = RadioState.SLEEP
        #: Fault-injection switch: a failed radio is electrically dark —
        #: it neither transmits onto the medium, receives, senses, nor
        #: draws radio energy.  Toggled by the fault injector only.
        self.failed = False
        self.on_receive: Optional[Callable[[Packet, float], None]] = None
        self.on_tx_done: Optional[Callable[[Packet], None]] = None
        medium.register(self)

    @property
    def is_transmitting(self) -> bool:
        return self.state is RadioState.TX

    # -- fault hooks ------------------------------------------------------------

    def fail(self) -> None:
        """Take the radio down (fault injection).  A transmission already
        on the air completes — airtimes are milliseconds, far below any
        meaningful fault timescale — but nothing new reaches the medium
        and nothing is received until :meth:`recover`."""
        self.failed = True

    def recover(self) -> None:
        """Bring the radio back up after a transient outage."""
        self.failed = False

    def transmit(self, packet: Packet) -> float:
        """Broadcast a packet copy; returns its airtime in seconds.

        The MAC layer must not call this while a transmission is in flight
        (half duplex is a protocol invariant, so violating it is a bug, not
        a simulated loss).
        """
        if self.state is RadioState.TX:
            raise RuntimeError(
                f"radio at location {self.location} is already transmitting"
            )
        if self.failed:
            # The MAC's state machine still sees its transmit attempt
            # complete after the nominal airtime — keeping TDMA slots and
            # CSMA cycles deterministic through an outage — but the packet
            # never reaches the medium and no energy is drawn.
            airtime = self.spec.packet_airtime_s(packet.length_bytes)
            self.state = RadioState.TX
            self.stats.fault_tx_suppressed += 1
            self.sim.schedule(airtime, self._void_transmission_ended, packet)
            return airtime
        self.state = RadioState.TX
        airtime = self.medium.begin_transmission(self, packet)
        self.stats.transmissions += 1
        self.stats.tx_seconds += airtime
        return airtime

    def _transmission_ended(self, tx) -> None:
        self.state = RadioState.SLEEP
        if self.on_tx_done is not None:
            self.on_tx_done(tx.packet)

    def _void_transmission_ended(self, packet: Packet) -> None:
        """Tail of a transmission suppressed by a radio fault."""
        self.state = RadioState.SLEEP
        if self.on_tx_done is not None:
            self.on_tx_done(packet)

    def deliver(self, packet: Packet, rssi_dbm: float) -> None:
        if self.on_receive is not None:
            self.on_receive(packet, rssi_dbm)
