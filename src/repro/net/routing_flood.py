"""Mesh routing: controlled flooding with hop counter and visited history.

The paper opts for controlled flooding (Sec. 2.1.2) as the mesh scheme:
every node rebroadcasts any received packet copy provided that

1. it is not the copy's final destination,
2. it does not already appear in the copy's visited history (the payload
   carries the list of nodes reached, preventing revisits), and
3. the copy's hop counter is below N_hops.

With full connectivity and N_hops = 2 this produces exactly
``N_reTx = 1 + (N−2)² = N² − 4N + 5`` transmissions per payload — the
origin's broadcast, a first relay ring of N−2 copies (everyone but origin
and destination), and (N−2)(N−3) second-ring copies — matching the paper's
expression used in the mesh branch of Eqs. 5 and 9.

A small random forwarding jitter decorrelates the relays that a single
broadcast triggers simultaneously; without it, CSMA relays would all sense
an idle medium at the same instant and collide deterministically.  Real
flooding implementations apply the same jitter for the same reason.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import RoutingOptions
from repro.net.mac_base import MacBase
from repro.net.packet import Packet
from repro.net.stats import NodeStats

#: Upper edge of the uniform forwarding jitter window.
FLOOD_JITTER_MAX_S = 5e-3


class FloodRouting:
    """Routing layer for one node in a controlled-flooding mesh."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacBase,
        options: RoutingOptions,
        stats: NodeStats,
        rng: RngStreams,
        jitter_max_s: float = FLOOD_JITTER_MAX_S,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.options = options
        self.stats = stats
        self.rng = rng
        self.jitter_max_s = jitter_max_s
        self.deliver_up: Optional[Callable[[Packet, float], None]] = None

    @property
    def location(self) -> int:
        return self.mac.location

    # -- downward path -----------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit a freshly generated payload (hop 0, history = {origin})."""
        self.mac.enqueue(packet.originated())

    # -- upward path ---------------------------------------------------------------

    def on_receive(self, packet: Packet, rssi_dbm: float) -> None:
        if self.deliver_up is not None:
            self.deliver_up(packet, rssi_dbm)
        if not self._should_relay(packet):
            return
        copy = packet.relayed_by(self.location)
        self.stats.relays += 1
        if self.jitter_max_s > 0:
            delay = self.rng.uniform(
                f"flood_jitter/{self.location}", 0.0, self.jitter_max_s
            )
            self.sim.schedule(delay, self.mac.enqueue, copy)
        else:
            self.mac.enqueue(copy)

    def _should_relay(self, packet: Packet) -> bool:
        """The three controlled-flooding conditions."""
        if packet.destination == self.location:
            return False
        if self.location in packet.visited:
            return False
        return packet.hops_used < self.options.max_hops
