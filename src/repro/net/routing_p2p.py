"""Point-to-point forwarding mesh: least-loss routes instead of flooding.

This is the alternative mesh scheme the paper cites (Sec. 2.1.2: "mesh
networks generally relay messages using either flooding or point-to-point
forwarding schemes") and argues against for the Human Intranet because of
route-maintenance overhead under a fast-changing channel.  Implementing it
makes that argument *testable*: P2P transmits far fewer copies than
controlled flooding (one per traversed hop — lower power), but a single
deep fade on any route edge loses the packet (lower reliability on the
dynamic body channel), which is exactly the trade-off the paper predicts.

Routes are shortest paths by mean path loss over the connectivity graph
whose edges are the links whose *average* budget closes at the configured
TX power (networkx Dijkstra at construction — static routing, mirroring a
protocol that amortizes route discovery).  Every node derives the same
tables from the same mean channel, so next-hop forwarding is consistent.

Forwarding rules: a copy is addressed to one ``next_hop``; only that node
relays (re-addressing the copy to its own next hop), the hop counter and
visited history bound the route, and unreachable destinations fall back to
a direct single-hop attempt.  Destinations opportunistically accept any
overheard copy — reception is free redundancy on a broadcast medium.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

import networkx as nx

from repro.channel.pathloss import MeanPathLossModel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import RoutingOptions
from repro.net.mac_base import MacBase
from repro.net.packet import Packet
from repro.net.stats import NodeStats


def build_route_tables(
    placement: List[int],
    mean_model: MeanPathLossModel,
    tx_dbm: float,
    sensitivity_dbm: float,
    margin_db: float = 0.0,
) -> Dict[int, Dict[int, int]]:
    """Next-hop tables for every node: ``tables[node][dst] -> next hop``.

    Edges exist where the mean link budget closes with at least
    ``margin_db`` of slack; weights are the mean path losses, so routes
    prefer strong links.  Unreachable destinations are omitted (callers
    fall back to a direct attempt).
    """
    graph = nx.Graph()
    graph.add_nodes_from(placement)
    for a_index, a in enumerate(placement):
        for b in placement[a_index + 1:]:
            loss = mean_model.mean_path_loss(a, b)
            if tx_dbm - loss >= sensitivity_dbm + margin_db:
                graph.add_edge(a, b, weight=loss)

    tables: Dict[int, Dict[int, int]] = {node: {} for node in placement}
    for source in placement:
        paths = nx.single_source_dijkstra_path(graph, source, weight="weight")
        for dst, path in paths.items():
            if dst != source and len(path) >= 2:
                tables[source][dst] = path[1]
    return tables


class P2pRouting:
    """Routing layer for one node in a point-to-point forwarding mesh."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacBase,
        options: RoutingOptions,
        stats: NodeStats,
        rng: RngStreams,
        route_table: Optional[Dict[int, int]] = None,
        placement: Optional[List[int]] = None,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.options = options
        self.stats = stats
        self.rng = rng
        self.deliver_up: Optional[Callable[[Packet, float], None]] = None
        if route_table is not None:
            self._routes = dict(route_table)
        elif placement is not None:
            tables = build_route_tables(
                sorted(placement),
                mac.radio.medium.channel.mean_model,
                mac.radio.tx_mode.output_dbm,
                mac.radio.spec.sensitivity_dbm,
            )
            self._routes = tables[self.location]
        else:
            raise ValueError("P2P routing needs a route table or a placement")

    @property
    def location(self) -> int:
        return self.mac.location

    def next_hop_for(self, destination: int) -> int:
        """The configured next hop (destination itself when unrouted)."""
        return self._routes.get(destination, destination)

    # -- downward path -----------------------------------------------------------

    def send(self, packet: Packet) -> None:
        copy = replace(
            packet.originated(), next_hop=self.next_hop_for(packet.destination)
        )
        self.mac.enqueue(copy)

    # -- upward path ---------------------------------------------------------------

    def on_receive(self, packet: Packet, rssi_dbm: float) -> None:
        if self.deliver_up is not None:
            # Opportunistic delivery: the application accepts any copy
            # addressed (at the app layer) to this node, even overheard
            # ones — free redundancy on a broadcast PHY.
            self.deliver_up(packet, rssi_dbm)
        if not self._should_forward(packet):
            return
        self.stats.relays += 1
        copy = replace(
            packet.relayed_by(self.location),
            next_hop=self.next_hop_for(packet.destination),
        )
        self.mac.enqueue(copy)

    def _should_forward(self, packet: Packet) -> bool:
        if packet.next_hop != self.location:
            return False
        if packet.destination == self.location:
            return False
        if self.location in packet.visited:
            return False
        return packet.hops_used < self.options.max_hops
