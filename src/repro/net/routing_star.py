"""Star routing: all traffic relayed through a central coordinator.

In the star topology (Sec. 2.1.2), the coordinator (n_coor — the chest node
in the design example) rebroadcasts every packet it receives from the other
nodes.  Because the radio medium is broadcast, a destination can hear a
payload twice: the origin's own transmission and the coordinator's relay —
the factor of 2 in the star branch of Eq. 5 — and the application counts
whichever copy arrives first.

The coordinator relays each payload at most once (tracked per application
identity), and does not relay payloads it originated or payloads addressed
to itself.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Tuple

from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import RoutingOptions
from repro.net.mac_base import MacBase
from repro.net.packet import Packet
from repro.net.stats import NodeStats


class StarRouting:
    """Routing layer for one node in a star topology."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacBase,
        options: RoutingOptions,
        stats: NodeStats,
        rng: RngStreams,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.options = options
        self.stats = stats
        self.rng = rng
        self.deliver_up: Optional[Callable[[Packet, float], None]] = None
        self._relayed: Set[Tuple[int, int]] = set()
        # Both are fixed at construction; cached so the per-copy receive
        # path skips the three-property chain down to the radio.
        self._location = mac.location
        self._is_coordinator = self._location == options.coordinator

    @property
    def location(self) -> int:
        return self._location

    @property
    def is_coordinator(self) -> bool:
        return self._is_coordinator

    # -- downward path (app -> network) --------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit a freshly generated payload."""
        self.mac.enqueue(packet.originated())

    # -- upward path (radio -> app) --------------------------------------------

    def on_receive(self, packet: Packet, rssi_dbm: float) -> None:
        """Handle a decoded packet copy: deliver to the application and, on
        the coordinator, relay it."""
        if self.deliver_up is not None:
            self.deliver_up(packet, rssi_dbm)
        if not self._is_coordinator:
            return
        location = self._location
        if packet.origin == location:
            return  # our own payload echoed back by someone (cannot happen
            # in star, but harmless to guard)
        if packet.destination == location:
            return  # addressed to the coordinator: no relay needed
        if packet.relayer == location:
            return
        uid = packet.uid
        if uid in self._relayed:
            return
        self._relayed.add(uid)
        self.stats.relays += 1
        self.mac.enqueue(packet.relayed_by(self.location))
