"""Network performance bookkeeping: PDR (Eqs. 6-7), power, lifetime.

The application layer reports generated and delivered payloads here; the
radio reports time spent transmitting and receiving.  At the end of a run
the container computes exactly the paper's estimators:

* per-node PDR (Eq. 6): average over sources i ≠ k of the fraction of
  unique packets sent from i to k that k received;
* network PDR (Eq. 7): average of the node PDRs;
* per-node power: baseline + TxmW · (TX time fraction) + RxmW · (RX time
  fraction);
* network lifetime (Eq. 4): min over battery-limited nodes of
  Ebat / P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.library.batteries import SECONDS_PER_DAY, BatterySpec


@dataclass
class NodeStats:
    """Counters and accumulators for one node."""

    location: int
    #: unique payloads generated, keyed by destination.
    sent: Dict[int, int] = field(default_factory=dict)
    #: unique payloads delivered to this node's application, keyed by origin.
    received: Dict[int, int] = field(default_factory=dict)
    #: identities already delivered, to deduplicate relayed copies.
    delivered_uids: Set[Tuple[int, int]] = field(default_factory=set)
    tx_seconds: float = 0.0
    rx_seconds: float = 0.0
    transmissions: int = 0
    receptions: int = 0
    collisions_seen: int = 0
    below_sensitivity: int = 0
    buffer_drops: int = 0
    relays: int = 0
    #: transmissions/arrivals suppressed because this node's radio was
    #: taken down by fault injection (zero in healthy runs).
    fault_tx_suppressed: int = 0
    fault_rx_suppressed: int = 0
    #: sum of delivery latencies for delivered payloads (first copy only).
    latency_sum: float = 0.0
    #: optional time-binned payload accounting (fault campaigns only):
    #: bin index -> payloads generated / delivered, keyed by the payload's
    #: *generation* time so a bin's ratio is the delivery probability of
    #: traffic born in that window — the time-resolved PDR behind the
    #: recovery-time metric.  ``None`` disables binning (the default;
    #: healthy runs pay nothing).
    window_s: Optional[float] = None
    win_sent: Dict[int, int] = field(default_factory=dict)
    win_delivered: Dict[int, int] = field(default_factory=dict)

    def record_sent(self, destination: int, t: Optional[float] = None) -> None:
        self.sent[destination] = self.sent.get(destination, 0) + 1
        if self.window_s is not None and t is not None:
            index = int(t / self.window_s)
            self.win_sent[index] = self.win_sent.get(index, 0) + 1

    def record_delivery(
        self,
        origin: int,
        uid: Tuple[int, int],
        latency: float,
        created_at: Optional[float] = None,
    ) -> bool:
        """Record an application-level delivery; returns False for a
        duplicate copy of an already-delivered payload."""
        if uid in self.delivered_uids:
            return False
        self.delivered_uids.add(uid)
        self.received[origin] = self.received.get(origin, 0) + 1
        self.latency_sum += latency
        if self.window_s is not None and created_at is not None:
            index = int(created_at / self.window_s)
            self.win_delivered[index] = self.win_delivered.get(index, 0) + 1
        return True

    @property
    def deliveries(self) -> int:
        return sum(self.received.values())

    @property
    def mean_latency_s(self) -> float:
        n = self.deliveries
        return self.latency_sum / n if n else 0.0


class NetworkStats:
    """Aggregates node statistics into the paper's network metrics."""

    def __init__(self, locations: List[int]) -> None:
        self.locations = list(locations)
        self.nodes: Dict[int, NodeStats] = {
            loc: NodeStats(loc) for loc in self.locations
        }
        self.window_s: Optional[float] = None

    def node(self, location: int) -> NodeStats:
        return self.nodes[location]

    # -- time-resolved PDR (fault campaigns) -------------------------------------

    def enable_windows(self, window_s: float) -> None:
        """Turn on time-binned payload accounting on every node.  Must be
        called before traffic starts; healthy runs never call it."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        for stats in self.nodes.values():
            stats.window_s = window_s

    def windowed_pdr(self, horizon_s: float) -> Tuple[Tuple[float, Optional[float]], ...]:
        """Network delivery ratio per generation-time bin.

        Returns ``((bin_end_s, pdr-or-None), ...)`` covering the horizon;
        ``None`` marks bins in which no payload was generated (possible
        when every application is halted by faults).  This is a packet
        ratio over all pairs — coarser than the paper's Eq. 7 estimator
        but time-resolved, which Eq. 7 is not; it exists to locate *when*
        delivery collapses and recovers, not to restate the run-level PDR.
        """
        if self.window_s is None:
            return ()
        n_bins = max(1, int(math.ceil(horizon_s / self.window_s - 1e-9)))
        sent = [0] * n_bins
        delivered = [0] * n_bins
        for stats in self.nodes.values():
            for index, count in stats.win_sent.items():
                if index < n_bins:
                    sent[index] += count
            for index, count in stats.win_delivered.items():
                if index < n_bins:
                    delivered[index] += count
        out = []
        for index in range(n_bins):
            t_end = min(horizon_s, (index + 1) * self.window_s)
            ratio = (
                min(1.0, delivered[index] / sent[index]) if sent[index] else None
            )
            out.append((t_end, ratio))
        return tuple(out)

    # -- PDR ---------------------------------------------------------------

    def node_pdr(self, k: int) -> float:
        """Eq. 6: PDR of node k, averaged over source nodes.

        Pairs with zero sent packets (possible in very short runs) are
        excluded from the average rather than treated as zero, matching the
        estimator's interpretation as a conditional probability.
        """
        stats_k = self.nodes[k]
        ratios = []
        for i in self.locations:
            if i == k:
                continue
            sent_i_to_k = self.nodes[i].sent.get(k, 0)
            if sent_i_to_k == 0:
                continue
            got = stats_k.received.get(i, 0)
            ratios.append(min(1.0, got / sent_i_to_k))
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    def network_pdr(self) -> float:
        """Eq. 7: average of the node PDRs."""
        if not self.locations:
            return 0.0
        return sum(self.node_pdr(k) for k in self.locations) / len(self.locations)

    # -- power and lifetime -----------------------------------------------------

    def node_power_mw(
        self,
        k: int,
        horizon_s: float,
        tx_power_mw: float,
        rx_power_mw: float,
        baseline_mw: float,
    ) -> float:
        """Average electrical power of node k over the simulated horizon."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        s = self.nodes[k]
        radio_mw = (s.tx_seconds * tx_power_mw + s.rx_seconds * rx_power_mw) / horizon_s
        return baseline_mw + radio_mw

    def network_lifetime_days(
        self,
        horizon_s: float,
        tx_power_mw: float,
        rx_power_mw: float,
        baseline_mw: float,
        battery: BatterySpec,
        exclude: Optional[Set[int]] = None,
    ) -> float:
        """Eq. 4 in days: min over battery-limited nodes of Ebat / P.

        ``exclude`` removes the coordinator (it has a larger energy store,
        Sec. 4.1, so it never sets the minimum).
        """
        exclude = exclude or set()
        candidates = [loc for loc in self.locations if loc not in exclude]
        if not candidates:
            raise ValueError("no battery-limited nodes to compute lifetime over")
        worst_power = max(
            self.node_power_mw(loc, horizon_s, tx_power_mw, rx_power_mw, baseline_mw)
            for loc in candidates
        )
        return battery.lifetime_days(worst_power)

    def max_noncoordinator_power_mw(
        self,
        horizon_s: float,
        tx_power_mw: float,
        rx_power_mw: float,
        baseline_mw: float,
        exclude: Optional[Set[int]] = None,
    ) -> float:
        """The P̄ that Algorithm 1 compares against its MILP estimate."""
        exclude = exclude or set()
        candidates = [loc for loc in self.locations if loc not in exclude]
        if not candidates:
            raise ValueError("no battery-limited nodes")
        return max(
            self.node_power_mw(loc, horizon_s, tx_power_mw, rx_power_mw, baseline_mw)
            for loc in candidates
        )

    # -- reporting ------------------------------------------------------------

    def pair_matrix(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """``{(i, k): (sent, received)}`` for every ordered pair."""
        out: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for i in self.locations:
            for k in self.locations:
                if i == k:
                    continue
                out[(i, k)] = (
                    self.nodes[i].sent.get(k, 0),
                    self.nodes[k].received.get(i, 0),
                )
        return out

    def totals(self) -> Dict[str, int]:
        """Network-wide counter totals for diagnostics."""
        keys = (
            "transmissions",
            "receptions",
            "collisions_seen",
            "below_sensitivity",
            "buffer_drops",
            "relays",
            "fault_tx_suppressed",
            "fault_rx_suppressed",
        )
        return {
            key: sum(getattr(s, key) for s in self.nodes.values()) for key in keys
        }


def lifetime_days_from_power(power_mw: float, battery: BatterySpec) -> float:
    """Convenience: Eq. 4 for a single known worst-node power."""
    return battery.lifetime_days(power_mw)


def days_to_seconds(days: float) -> float:
    return days * SECONDS_PER_DAY
