"""Observability substrate: metrics, spans, structured JSONL traces.

Three layers, smallest first:

* :mod:`repro.obs.metrics` — process-local counters / gauges /
  histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — :class:`TraceWriter` (JSONL events + nested
  spans + run manifest) with a zero-cost :data:`NULL_TRACER` default;
* :mod:`repro.obs.runtime` — :class:`Instrumentation` bundles and the
  ambient process default used by substrate layers (DES kernel, simplex).

See DESIGN.md §6 for the span taxonomy and trace schema, and
:mod:`repro.analysis.trace_report` for the human-readable summarizer.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    Instrumentation,
    activate,
    get_active,
    set_active,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    TraceWriter,
    check_span_balance,
    iter_trace,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Instrumentation",
    "activate",
    "get_active",
    "set_active",
    "NULL_TRACER",
    "NullTracer",
    "TraceWriter",
    "check_span_balance",
    "iter_trace",
    "read_trace",
]
