"""Process-local metrics primitives: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat name → instrument map.  Instruments
are deliberately lock-free (the interpreter serializes the ``+=`` on the
hot path and every registry is process-local), allocation-light, and
cheap enough to leave enabled unconditionally: incrementing a counter is
one attribute add, and components hold direct references to their
instruments so the registry dict is only touched at construction time.

The registry is the single source of truth for run statistics — e.g. the
simulation oracle's ``stats()`` is computed entirely from its registry —
and :meth:`MetricsRegistry.to_dict` serializes everything for the CLI's
``--metrics-out`` dump.
"""

from __future__ import annotations

from typing import Dict, List, Union


class Counter:
    """A named monotone accumulator (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, by: Union[int, float] = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """A named last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """A sample-keeping histogram with nearest-rank quantiles.

    Samples are kept verbatim (the workloads instrumented here observe at
    per-simulation or per-solve grain, thousands of samples at most), so
    quantiles are exact.  The sorted view is cached and invalidated on
    insert, making repeated quantile queries O(1) after the first.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: bool = True

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; 0.0 on an empty histogram.

        By construction ``min <= quantile(q) <= max`` for every
        ``q ∈ [0, 1]`` and the function is monotone in ``q``.
        """
        if not self._samples:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples[min(len(self._samples) - 1, int(q * len(self._samples)))]

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = True

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are free-form dotted strings (``"oracle.simulations"``,
    ``"milp.nodes"``).  Re-requesting a name returns the existing
    instrument; requesting it as a different type is an error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self._instruments.values():
            instrument.reset()  # type: ignore[attr-defined]

    def to_dict(self) -> Dict[str, dict]:
        """JSON-serializable snapshot of every instrument, sorted by name."""
        return {
            name: self._instruments[name].to_dict()  # type: ignore[attr-defined]
            for name in self.names()
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
