"""Instrumentation bundles and the ambient (process-local) default.

:class:`Instrumentation` pairs a :class:`~repro.obs.metrics.MetricsRegistry`
with a tracer.  Components that own a natural handle take one explicitly
(the simulation oracle, the explorer, the MILP formulation); substrate
layers with no clean plumbing path — the DES kernel deep inside picklable
replicate jobs, the simplex engine under the branch-and-bound solver —
read the *ambient* instrumentation via :func:`get_active`.

The ambient default uses a process-global registry and the no-op tracer,
so uninstrumented programs pay one function call plus a counter add per
*milestone* (per simulation run, per LP solve — never per event or per
pivot).  The CLI activates a real tracer for the duration of a run with
:func:`activate`; worker processes spawned by the oracle keep the no-op
default, which is why oracle- and explorer-level events (emitted in the
parent) remain complete under parallel fan-out while per-replicate DES
milestones are only traced in serial runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer


class Instrumentation:
    """A metrics registry plus a tracer, with convenience delegates."""

    __slots__ = ("metrics", "tracer")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- tracer delegates --------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        self.tracer.event(kind, **fields)

    def span(self, name: str, **fields):
        return self.tracer.span(name, **fields)

    def manifest(self, **fields) -> None:
        self.tracer.manifest(**fields)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    # -- metrics delegates -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def __repr__(self) -> str:
        return (
            f"Instrumentation(metrics={self.metrics!r}, "
            f"tracing={self.tracing})"
        )


#: Process-global default: real (cheap) metrics, no tracing.
_DEFAULT = Instrumentation(MetricsRegistry(), NULL_TRACER)
_active = _DEFAULT


def get_active() -> Instrumentation:
    """The ambient instrumentation for this process."""
    return _active


def set_active(instr: Optional[Instrumentation]) -> Instrumentation:
    """Install ``instr`` as the ambient instrumentation (``None`` restores
    the process default).  Returns the previously active one."""
    global _active
    previous = _active
    _active = instr if instr is not None else _DEFAULT
    return previous


@contextmanager
def activate(instr: Instrumentation):
    """Scoped :func:`set_active`: restores the previous instrumentation on
    exit even if the body raises."""
    previous = set_active(instr)
    try:
        yield instr
    finally:
        set_active(previous)
