"""Structured JSONL tracing: events, nested spans, and the run manifest.

A trace is a flat append-only file of JSON lines.  Every line is one
*event* with at minimum::

    {"kind": "<dotted.kind>", "seq": <int>, "t": <seconds since open>}

plus arbitrary JSON-serializable payload fields.  Spans are expressed as
paired ``span_begin`` / ``span_end`` events carrying a process-unique
``id``, their ``parent`` span id (0 at top level), and nesting ``depth``;
``span_end`` adds the monotonic duration ``dur_s``.  Emitting both edges
(rather than a single record at exit) keeps the file strictly
time-ordered and makes balance checkable from the trace alone.

Timing uses ``time.perf_counter`` relative to writer creation, so ``t``
and ``dur_s`` are monotonic but *not* reproducible across runs.  Tools
that diff traces (the golden-trace regression test) must project onto the
deterministic payload fields — see
:func:`repro.analysis.trace_report.explorer_sequence`.

The default tracer everywhere is :data:`NULL_TRACER`, whose methods are
empty: instrumented code pays one no-op call per milestone, nothing per
simulated event or simplex pivot.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

#: Events whose payloads (beyond ``kind``) are structural rather than
#: domain data; readers usually filter on ``kind`` anyway.
SPAN_BEGIN = "span_begin"
SPAN_END = "span_end"
MANIFEST = "manifest"


class TraceWriter:
    """Append-only JSONL trace file with span bookkeeping.

    Parameters
    ----------
    path:
        Output file; truncated on open (one trace per run).
    autoflush:
        Flush after every line (default) so a crashed run still leaves a
        readable prefix.  Trace emission happens at milestone grain —
        per explorer iteration, per oracle evaluation, per MILP solve —
        so the flush cost is irrelevant next to the work being traced.
    """

    def __init__(self, path, autoflush: bool = True) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._autoflush = autoflush
        self._t0 = time.perf_counter()
        self._seq = 0
        self._next_span = 1
        self._stack: List[int] = []
        self._closed = False

    # -- emission ----------------------------------------------------------------

    def _emit(self, payload: dict) -> None:
        if self._closed:
            return
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        if self._autoflush:
            self._fh.flush()

    def event(self, kind: str, **fields) -> None:
        """Record one event line (payload fields must be JSON-serializable)."""
        self._seq += 1
        payload = {
            "kind": kind,
            "seq": self._seq,
            "t": round(time.perf_counter() - self._t0, 6),
        }
        if self._stack:
            payload["span"] = self._stack[-1]
        payload.update(fields)
        self._emit(payload)

    def manifest(self, **fields) -> None:
        """Record the run manifest (conventionally the first line)."""
        self.event(MANIFEST, **fields)

    @contextmanager
    def span(self, name: str, **fields):
        """Time a nested region; emits ``span_begin``/``span_end`` pairs."""
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1] if self._stack else 0
        depth = len(self._stack)
        self.event(SPAN_BEGIN, name=name, id=span_id, parent=parent,
                   depth=depth, **fields)
        self._stack.append(span_id)
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            dur = time.perf_counter() - start
            self._stack.pop()
            self.event(SPAN_END, name=name, id=span_id, parent=parent,
                       depth=depth, dur_s=round(dur, 6))

    # -- lifecycle ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> int:
        return 0

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every method is a constant-time no-op."""

    __slots__ = ()

    path = None

    @property
    def enabled(self) -> bool:
        return False

    def event(self, kind: str, **fields) -> None:
        return None

    def manifest(self, **fields) -> None:
        return None

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: Shared no-op tracer instance (stateless, safe to share globally).
NULL_TRACER = NullTracer()

Tracer = Union[TraceWriter, NullTracer]


def iter_trace(path) -> Iterator[dict]:
    """Yield trace events from a JSONL file, skipping blank or partially
    written (corrupt) lines — the same tolerance as the result cache."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict):
                yield payload


def read_trace(path) -> List[dict]:
    """Load a whole trace file into memory (see :func:`iter_trace`)."""
    return list(iter_trace(path))


def check_span_balance(events: List[dict]) -> Optional[str]:
    """Validate span nesting in an event stream.

    Returns ``None`` when every ``span_begin`` is closed by a matching
    ``span_end`` in LIFO order with consistent parent/depth fields, or a
    human-readable description of the first violation.  Used by tests and
    by ``trace_report`` to flag truncated traces.
    """
    stack: List[dict] = []
    for ev in events:
        kind = ev.get("kind")
        if kind == SPAN_BEGIN:
            expected_parent = stack[-1]["id"] if stack else 0
            if ev.get("parent") != expected_parent:
                return (
                    f"span {ev.get('id')} ({ev.get('name')!r}) declares "
                    f"parent {ev.get('parent')} but {expected_parent} is open"
                )
            if ev.get("depth") != len(stack):
                return (
                    f"span {ev.get('id')} declares depth {ev.get('depth')} "
                    f"at stack depth {len(stack)}"
                )
            stack.append(ev)
        elif kind == SPAN_END:
            if not stack:
                return f"span_end {ev.get('id')} with no span open"
            top = stack.pop()
            if ev.get("id") != top["id"]:
                return (
                    f"span_end {ev.get('id')} closes out of order "
                    f"(innermost open span is {top['id']})"
                )
    if stack:
        return f"{len(stack)} span(s) left open (innermost {stack[-1]['id']})"
    return None
