"""Shared test fixtures and options.

``--update-golden`` regenerates the golden-trace snapshots under
``tests/golden/`` from the current code instead of comparing against
them.  Use it deliberately: a diff in the regenerated file IS the
behaviour change the golden test exists to catch — review it like code.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate golden trace snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def crash_worker(tmp_path, monkeypatch):
    """Arm the worker-pool chaos hook (see ``repro.core.parallel``).

    Returns an ``arm(nth=1)`` callable: after arming, the first pool
    worker whose per-process task counter reaches ``nth`` consumes the
    flag file and dies with ``os._exit`` — a real, unannounced crash the
    pool must recover from.  Exactly one crash per arming; the hook is
    inert in the parent process (serial/quarantine paths never crash).
    The environment variable is inherited by workers because the pool
    forks lazily, on first parallel use.
    """
    from repro.core.parallel import CHAOS_CRASH_ENV

    def arm(nth: int = 1):
        flag = tmp_path / "chaos-crash.flag"
        flag.write_text("armed")
        monkeypatch.setenv(CHAOS_CRASH_ENV, f"{flag}:{nth}")
        return flag

    return arm
