"""Shared test fixtures and options.

``--update-golden`` regenerates the golden-trace snapshots under
``tests/golden/`` from the current code instead of comparing against
them.  Use it deliberately: a diff in the regenerated file IS the
behaviour change the golden test exists to catch — review it like code.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate golden trace snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
