"""Tests for the analysis utilities: Pareto, convergence, ASCII plots."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ascii_plot import figure3_symbols, render_figure3, render_scatter
from repro.analysis.convergence import (
    estimate_pdr_with_tolerance,
    replicates_needed,
)
from repro.analysis.pareto import dominates, front_summary, is_on_front, pareto_front
from repro.core.design_space import Configuration
from repro.core.evaluator import EvaluationRecord
from repro.library.mac_options import MacKind, RoutingKind


def record(nlt_days, pdr, tag=0):
    """A synthetic evaluation record with controlled objectives."""
    config = Configuration(
        (0, 1, 3, 5 + (tag % 2)),
        [-20.0, -10.0, 0.0][tag % 3],
        MacKind.CSMA if tag % 2 else MacKind.TDMA,
        RoutingKind.STAR if tag % 4 < 2 else RoutingKind.MESH,
    )
    return EvaluationRecord(
        config=config, pdr=pdr, power_mw=1.0, nlt_days=nlt_days,
        wall_seconds=0.01, outcome=None,
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(record(10, 0.9), record(5, 0.8))

    def test_equal_points_do_not_dominate(self):
        a, b = record(10, 0.9), record(10, 0.9)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_incomparable(self):
        a, b = record(10, 0.5), record(5, 0.9)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_single_objective_improvement_dominates(self):
        assert dominates(record(10, 0.9), record(10, 0.8))
        assert dominates(record(11, 0.9), record(10, 0.9))


class TestParetoFront:
    def test_simple_front(self):
        records = [
            record(30, 0.5, 0),
            record(20, 0.8, 1),
            record(10, 0.99, 2),
            record(15, 0.6, 3),   # dominated by (20, 0.8)
            record(25, 0.4, 4),   # dominated by (30, 0.5)
        ]
        front = pareto_front(records)
        objectives = [(p.nlt_days, p.pdr) for p in front]
        assert objectives == [(30, 0.5), (20, 0.8), (10, 0.99)]

    def test_front_sorted_by_descending_lifetime(self):
        records = [record(10, 0.99), record(30, 0.5), record(20, 0.8)]
        front = pareto_front(records)
        nlts = [p.nlt_days for p in front]
        assert nlts == sorted(nlts, reverse=True)

    def test_all_dominated_by_one(self):
        best = record(100, 1.0)
        records = [best, record(50, 0.5), record(20, 0.2)]
        front = pareto_front(records)
        assert len(front) == 1
        assert front[0].record is best

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_is_on_front(self):
        records = [record(30, 0.5, 0), record(20, 0.8, 1), record(15, 0.6, 2)]
        assert is_on_front(records[0], records)
        assert is_on_front(records[1], records)
        assert not is_on_front(records[2], records)

    def test_front_summary_renders(self):
        text = front_summary(pareto_front([record(30, 0.5), record(10, 0.9)]))
        assert "Pareto front (2 points)" in text

    @given(
        data=st.lists(
            st.tuples(st.floats(1, 100), st.floats(0, 1)),
            min_size=1, max_size=40,
        )
    )
    def test_front_members_mutually_nondominated(self, data):
        records = [record(nlt, pdr, i) for i, (nlt, pdr) in enumerate(data)]
        front = pareto_front(records)
        for i, a in enumerate(front):
            for b in front[i + 1:]:
                assert not dominates(a.record, b.record)
                assert not dominates(b.record, a.record)

    @given(
        data=st.lists(
            st.tuples(st.floats(1, 100), st.floats(0, 1)),
            min_size=1, max_size=40,
        )
    )
    def test_every_record_dominated_by_or_on_front(self, data):
        records = [record(nlt, pdr, i) for i, (nlt, pdr) in enumerate(data)]
        front = pareto_front(records)
        tol = 1e-9
        for r in records:
            # Either (within tolerance) coincides with a front point, or
            # some front point weakly dominates it — sub-tolerance
            # objective differences count as coincidence, matching the
            # dominance tolerance in repro.analysis.pareto.
            near_front = any(
                abs(p.nlt_days - r.nlt_days) <= tol and abs(p.pdr - r.pdr) <= tol
                for p in front
            )
            weakly_dominated = any(
                p.nlt_days >= r.nlt_days - tol and p.pdr >= r.pdr - tol
                for p in front
            )
            assert near_front or weakly_dominated


class TestConvergence:
    def test_converges_on_constant_sequence(self):
        result = estimate_pdr_with_tolerance(lambda i: 0.9, epsilon=0.01)
        assert result.converged
        assert result.replicates == 2
        assert result.mean == pytest.approx(0.9)
        assert result.half_width == 0.0

    def test_noisy_sequence_needs_more_replicates(self):
        values = [0.80, 0.95, 0.85, 0.91, 0.88, 0.89, 0.885, 0.887, 0.886,
                  0.8855]
        result = estimate_pdr_with_tolerance(
            lambda i: values[i], epsilon=0.02, max_replicates=10
        )
        assert result.replicates > 2

    def test_budget_exhaustion_flagged(self):
        # Alternating extremes never converge to a 1% interval.
        result = estimate_pdr_with_tolerance(
            lambda i: 0.0 if i % 2 else 1.0, epsilon=0.01, max_replicates=5
        )
        assert not result.converged
        assert result.replicates == 5
        assert result.half_width > 0.01

    def test_interval_contains_mean(self):
        result = estimate_pdr_with_tolerance(
            lambda i: [0.8, 0.9, 0.85][i % 3], epsilon=0.5
        )
        lo, hi = result.interval
        assert lo <= result.mean <= hi

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            estimate_pdr_with_tolerance(lambda i: 0.5, epsilon=0.0)
        with pytest.raises(ValueError):
            estimate_pdr_with_tolerance(lambda i: 0.5, confidence=1.5)
        with pytest.raises(ValueError):
            estimate_pdr_with_tolerance(lambda i: 0.5, min_replicates=1)
        with pytest.raises(ValueError):
            estimate_pdr_with_tolerance(
                lambda i: 0.5, min_replicates=4, max_replicates=3
            )

    def test_replicates_needed_scaling(self):
        few = replicates_needed(observed_std=0.01, epsilon=0.01)
        many = replicates_needed(observed_std=0.04, epsilon=0.01)
        assert many > few
        # Quadratic scaling in std.
        assert many == pytest.approx(16 * few, rel=0.5)

    def test_replicates_needed_edge_cases(self):
        assert replicates_needed(0.0, 0.01) == 2
        with pytest.raises(ValueError):
            replicates_needed(0.1, 0.0)


class TestAsciiPlot:
    def test_empty_points(self):
        assert render_scatter([]) == "(no points)"

    def test_canvas_size_validation(self):
        with pytest.raises(ValueError):
            render_scatter([(1, 1, "x")], width=4, height=4)

    def test_symbols_present(self):
        text = render_scatter(
            [(1.0, 1.0, "a"), (9.0, 9.0, "z")], width=40, height=10
        )
        assert "a" in text and "z" in text

    def test_axis_labels(self):
        text = render_scatter(
            [(0.0, 0.0, "x")], x_label="days", y_label="percent"
        )
        assert "days" in text and "percent" in text

    def test_hline_drawn(self):
        text = render_scatter(
            [(1.0, 0.0, "x"), (1.0, 100.0, "x")],
            y_range=(0, 100), hline=50.0,
        )
        assert "-" in text

    def test_figure3_symbols_scheme(self):
        assert figure3_symbols("star", -20.0) == "a"
        assert figure3_symbols("star", 0.0) == "c"
        assert figure3_symbols("mesh", -10.0) == "B"
        assert figure3_symbols("p2p", 7.0) == "x"

    def test_render_figure3_includes_legend(self):
        text = render_figure3(
            [(30.0, 90.0, "star", -10.0), (10.0, 99.0, "mesh", 0.0)],
            pdr_min_percent=50.0,
        )
        assert "a/b/c = star" in text
        assert "b" in text and "C" in text


class TestParetoEdgeCases:
    def test_empty_front_summary(self):
        assert pareto_front([]) == []
        assert "0 points" in front_summary([])

    def test_single_point_is_its_own_front(self):
        only = record(10, 0.9)
        front = pareto_front([only])
        assert len(front) == 1
        assert front[0].record is only
        assert is_on_front(only, [only])

    def test_duplicate_objectives_collapse_to_one_point(self):
        twins = [record(10, 0.9, 0), record(10, 0.9, 1)]
        front = pareto_front(twins)
        assert len(front) == 1
        assert (front[0].nlt_days, front[0].pdr) == (10, 0.9)

    def test_duplicates_of_dominated_point_stay_off_front(self):
        records = [record(20, 0.95), record(10, 0.5, 1), record(10, 0.5, 2)]
        front = pareto_front(records)
        assert [(p.nlt_days, p.pdr) for p in front] == [(20, 0.95)]


class TestExplorationResultToDict:
    """`ExplorationResult.to_dict` is the archival format of a run; it
    must survive a JSON round trip without loss."""

    def _result(self):
        import math

        from repro.core.explorer import ExplorationResult, IterationRecord

        best = record(25, 0.95, 1)
        loser = record(30, 0.60, 2)
        return ExplorationResult(
            pdr_min=0.9,
            status="optimal",
            termination_reason="alpha_bound",
            best=best,
            iterations=[
                IterationRecord(
                    index=0,
                    analytic_power_mw=1.25,
                    candidates=[best.config, loser.config],
                    evaluations=[best, loser],
                    feasible=[best],
                    incumbent_power_mw=best.power_mw,
                    incumbent=best.config,
                ),
                IterationRecord(
                    index=1,
                    analytic_power_mw=1.5,
                    candidates=[],
                    evaluations=[],
                    feasible=[],
                    incumbent_power_mw=math.inf,  # never-updated sentinel
                    incumbent=None,
                ),
            ],
            simulations_run=2,
            milp_solves=2,
            wall_seconds=0.5,
            oracle_stats={"simulations_run": 2, "cache_hits": 0},
        )

    def test_json_round_trip_is_lossless(self):
        import json

        payload = self._result().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_serialized_shape(self):
        payload = self._result().to_dict()
        assert payload["status"] == "optimal"
        assert payload["best"]["pdr"] == 0.95
        assert payload["best"]["placement"] == [0, 1, 3, 6]
        assert len(payload["iterations"]) == 2
        first, second = payload["iterations"]
        assert first["num_candidates"] == 2
        assert first["num_feasible"] == 1
        assert len(first["evaluations"]) == 2
        # The inf sentinel maps to None so the payload stays valid JSON.
        assert second["incumbent_power_mw"] is None

    def test_infeasible_result_serializes(self):
        import json

        from repro.core.explorer import ExplorationResult

        payload = ExplorationResult(
            pdr_min=0.99,
            status="infeasible",
            termination_reason="milp_infeasible",
            best=None,
        ).to_dict()
        assert payload["best"] is None
        assert json.loads(json.dumps(payload)) == payload
