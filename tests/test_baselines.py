"""Tests for the simulated-annealing and random-search baselines."""

import pytest

from repro.baselines.annealing import (
    AnnealingSchedule,
    SimulatedAnnealing,
)
from repro.baselines.random_search import RandomSearch
from repro.core.design_space import DesignSpace, PlacementConstraints
from repro.core.evaluator import SimulationOracle
from repro.core.problem import DesignProblem, ScenarioParameters


def tiny_problem(pdr_min=0.5, tsim=3.0, seed=0):
    return DesignProblem(
        pdr_min=pdr_min,
        scenario=ScenarioParameters(tsim_s=tsim, replicates=1, seed=seed),
        space=DesignSpace(
            constraints=PlacementConstraints(max_nodes=4),
            tx_levels_dbm=(-10.0, 0.0),
        ),
    )


class TestSchedule:
    def test_temperature_endpoints(self):
        schedule = AnnealingSchedule(t_max=10.0, t_min=0.1, steps=50)
        assert schedule.temperature(0) == pytest.approx(10.0)
        assert schedule.temperature(49) == pytest.approx(0.1)

    def test_temperature_monotone_decreasing(self):
        schedule = AnnealingSchedule(steps=30)
        temps = [schedule.temperature(step) for step in range(30)]
        assert temps == sorted(temps, reverse=True)

    def test_single_step_schedule(self):
        schedule = AnnealingSchedule(steps=1)
        assert schedule.temperature(0) == schedule.t_max

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(t_max=1.0, t_min=2.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(steps=0)


class TestMoves:
    def test_neighbors_stay_feasible(self):
        problem = tiny_problem()
        sa = SimulatedAnnealing(problem, seed=3)
        config = sa.initial_state()
        for _ in range(200):
            config = sa.random_neighbor(config)
            assert problem.space.contains(config)

    def test_neighbor_differs_from_current(self):
        problem = tiny_problem()
        sa = SimulatedAnnealing(problem, seed=5)
        config = sa.initial_state()
        diffs = sum(
            sa.random_neighbor(config).key() != config.key()
            for _ in range(50)
        )
        assert diffs == 50

    def test_moves_reach_all_components(self):
        """The move set must be able to change every configuration
        dimension (ergodicity smoke check)."""
        problem = tiny_problem()
        sa = SimulatedAnnealing(problem, seed=7)
        config = sa.initial_state()
        seen_tx, seen_mac, seen_routing, seen_placement = set(), set(), set(), set()
        for _ in range(300):
            config = sa.random_neighbor(config)
            seen_tx.add(config.tx_dbm)
            seen_mac.add(config.mac)
            seen_routing.add(config.routing)
            seen_placement.add(config.placement)
        assert len(seen_tx) == 2
        assert len(seen_mac) == 2
        assert len(seen_routing) == 2
        assert len(seen_placement) > 1


class TestEnergy:
    def test_feasible_energy_is_power(self):
        problem = tiny_problem(pdr_min=0.0)
        sa = SimulatedAnnealing(problem)
        record = sa.oracle.evaluate(sa.initial_state())
        assert sa.energy(record) == pytest.approx(record.power_mw)

    def test_infeasible_energy_penalized(self):
        problem = tiny_problem(pdr_min=1.0)
        sa = SimulatedAnnealing(problem)
        record = sa.oracle.evaluate(sa.initial_state())
        if record.pdr < 1.0:
            assert sa.energy(record) > record.power_mw + 1.0


class TestRun:
    def test_finds_feasible_solution(self):
        problem = tiny_problem(pdr_min=0.5)
        sa = SimulatedAnnealing(
            problem, schedule=AnnealingSchedule(steps=40), seed=1
        )
        result = sa.run()
        assert result.best is not None
        assert result.best.pdr >= 0.5
        assert result.steps_taken == 40
        assert 0 < result.simulations_run <= 41

    def test_trajectory_monotone_best(self):
        problem = tiny_problem(pdr_min=0.5)
        sa = SimulatedAnnealing(
            problem, schedule=AnnealingSchedule(steps=30), seed=2
        )
        result = sa.run()
        best_values = [b for _s, _n, b in result.trajectory]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best_values, best_values[1:]))

    def test_simulations_to_reach(self):
        problem = tiny_problem(pdr_min=0.5)
        sa = SimulatedAnnealing(
            problem, schedule=AnnealingSchedule(steps=30), seed=2
        )
        result = sa.run()
        assert result.best is not None
        sims = result.simulations_to_reach(result.best.power_mw)
        assert sims is not None
        assert sims <= result.simulations_run
        assert result.simulations_to_reach(0.0) is None

    def test_deterministic_per_seed(self):
        problem = tiny_problem(pdr_min=0.5)
        r1 = SimulatedAnnealing(
            problem, schedule=AnnealingSchedule(steps=20), seed=9
        ).run()
        r2 = SimulatedAnnealing(
            problem, schedule=AnnealingSchedule(steps=20), seed=9
        ).run()
        assert r1.best.config.key() == r2.best.config.key()
        assert r1.trajectory == r2.trajectory

    def test_steps_override(self):
        problem = tiny_problem()
        sa = SimulatedAnnealing(problem, seed=1)
        result = sa.run(steps=10)
        assert result.steps_taken == 10

    def test_oracle_cache_shared(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        sa = SimulatedAnnealing(
            problem, oracle=oracle, schedule=AnnealingSchedule(steps=60), seed=4
        )
        result = sa.run()
        # Revisits are free: distinct sims < steps for a small space.
        assert result.simulations_run < 61
        assert oracle.cache_hits > 0


class TestRandomSearch:
    def test_finds_feasible(self):
        problem = tiny_problem(pdr_min=0.5)
        rs = RandomSearch(problem, seed=0)
        result = rs.run(samples=20)
        assert result.samples == 20
        assert result.best is not None
        assert result.best.pdr >= 0.5

    def test_sample_validation(self):
        problem = tiny_problem()
        with pytest.raises(ValueError):
            RandomSearch(problem).run(samples=0)

    def test_repeats_served_from_cache(self):
        problem = tiny_problem()
        rs = RandomSearch(problem, seed=1)
        result = rs.run(samples=200)
        assert result.simulations_run <= problem.space.feasible_count()
        assert result.simulations_run < 200
