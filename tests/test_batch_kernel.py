"""Batched replicate kernel: bit identity, RNG contract, oracle wiring.

Pins PR 6's acceptance criteria at three levels:

* **numpy bitstream contract** — the vectorized draw blocks of
  :mod:`repro.channel.batch_draws` promise that array draws consume the
  underlying bit stream exactly as scalar draws do; each equivalence the
  module docstring claims is asserted here against the installed numpy.
* **kernel bit identity** — :func:`repro.core.batch.evaluate_batch`
  reproduces the scalar DES outcome field-for-field across randomized
  seeds, replicate counts, TX-power variants, and correlated fault
  worlds; unsupported configurations are refused up front.
* **oracle wiring** — ``batch_mode="auto"`` / ``"on"`` return records
  identical to ``"off"`` (the legacy scalar path) through both
  :class:`SimulationOracle` and :class:`EnsembleOracle`, with the
  duplicate-config dedup/hit accounting preserved and the batch-path
  counters advancing.
"""

import dataclasses
from dataclasses import replace

import pytest

from repro.channel.batch_draws import NORMAL, UNIFORM, Block, DrawBlocks
from repro.core.batch import batch_unsupported_reason, evaluate_batch
from repro.core.design_space import Configuration
from repro.core.evaluator import SimulationOracle
from repro.core.parallel import run_fixed_replicates
from repro.core.problem import ScenarioParameters
from repro.des.rng import RngStreams
from repro.faults.model import hub_stress_ensemble, sample_fault_ensemble
from repro.faults.resilience import EnsembleOracle
from repro.library.mac_options import MacKind, RoutingKind

np = pytest.importorskip("numpy")

STAR = Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA, RoutingKind.STAR)
STAR_LOW = replace(STAR, tx_dbm=-10.0)
MESH = Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA, RoutingKind.MESH)
CSMA = Configuration((0, 1, 3, 5), 0.0, MacKind.CSMA, RoutingKind.STAR)


def tiny_scenario(**overrides) -> ScenarioParameters:
    defaults = dict(tsim_s=2.0, replicates=1, seed=0)
    defaults.update(overrides)
    return ScenarioParameters(**defaults)


def assert_outcomes_identical(a, b):
    """Field-for-field equality of two SimulationOutcome dataclasses."""
    for f in dataclasses.fields(a):
        assert getattr(a, f.name) == getattr(b, f.name), f.name


class TestNumpyBitstreamContract:
    """The four draw equivalences batch_draws.py's docstring promises."""

    def _pair(self, seed=7):
        return (
            np.random.Generator(np.random.Philox(seed)),
            np.random.Generator(np.random.Philox(seed)),
        )

    def test_standard_normal_array_equals_scalar_sequence(self):
        vec, scal = self._pair()
        assert vec.standard_normal(size=37).tolist() == [
            float(scal.standard_normal()) for _ in range(37)
        ]

    def test_random_array_equals_scalar_sequence(self):
        vec, scal = self._pair()
        assert vec.random(size=37).tolist() == [
            float(scal.random()) for _ in range(37)
        ]

    def test_normal_is_loc_plus_scale_times_standard_normal(self):
        a, b = self._pair()
        loc, scale = 1.25, 0.375
        for _ in range(37):
            assert float(a.normal(loc, scale)) == loc + scale * float(
                b.standard_normal()
            )

    def test_uniform_defaults_equal_random(self):
        a, b = self._pair()
        for _ in range(37):
            assert float(a.uniform()) == float(b.random())

    def test_chained_block_extension_continues_the_sequence(self):
        """Growing a Block in doubling chunks must yield the same values
        a single bulk draw (or the scalar loop) would have produced."""
        for kind in (NORMAL, UNIFORM):
            rng = RngStreams(seed=3, replicate=1)
            block = Block(rng.stream("fading/0-1"), kind, initial=4)
            grown = [block.get(i) for i in range(500)]  # forces extensions

            ref_stream = RngStreams(seed=3, replicate=1).stream("fading/0-1")
            if kind == NORMAL:
                reference = [float(ref_stream.standard_normal()) for _ in range(500)]
            else:
                reference = [float(ref_stream.uniform()) for _ in range(500)]
            assert grown == reference

    def test_draw_blocks_share_stream_derivation(self):
        blocks = DrawBlocks(seed=5, replicate=2)
        direct = RngStreams(seed=5, replicate=2).stream("shadow/3")
        block = blocks.block("shadow/3", UNIFORM)
        assert block.get(0) == float(direct.uniform())


class TestUnsupportedGate:
    def test_supported_config_passes(self):
        assert batch_unsupported_reason(tiny_scenario(), STAR) is None

    def test_csma_refused(self):
        reason = batch_unsupported_reason(tiny_scenario(), CSMA)
        assert reason is not None and "csma" in reason.lower()

    def test_mesh_refused(self):
        reason = batch_unsupported_reason(tiny_scenario(), MESH)
        assert reason is not None and "mesh" in reason.lower()

    def test_adaptive_protocol_refused(self):
        scenario = tiny_scenario(
            adaptive_replicates=True, pdr_epsilon=0.02, max_replicates=4
        )
        reason = batch_unsupported_reason(scenario, STAR)
        assert reason is not None and "adaptive" in reason

    def test_evaluate_batch_rejects_unsupported(self):
        with pytest.raises(ValueError):
            evaluate_batch(tiny_scenario(), [CSMA], [None])

    def test_evaluate_batch_rejects_mixed_topologies(self):
        other = Configuration((0, 1, 3, 6), 0.0, MacKind.TDMA, RoutingKind.STAR)
        with pytest.raises(ValueError):
            evaluate_batch(tiny_scenario(), [STAR, other], [None])


class TestKernelBitIdentity:
    """evaluate_batch vs the scalar reference, field for field."""

    def _check_grid(self, scenario, configs, worlds):
        outcomes = evaluate_batch(scenario, configs, worlds)
        for ci, config in enumerate(configs):
            for wi, world in enumerate(worlds):
                scalar = run_fixed_replicates(
                    replace(scenario, fault_scenario=world), config
                )
                assert_outcomes_identical(outcomes[(ci, wi)], scalar)

    @pytest.mark.parametrize("seed", [0, 11, 2026])
    def test_healthy_lane_matches_scalar_across_seeds(self, seed):
        self._check_grid(tiny_scenario(seed=seed), [STAR], [None])

    @pytest.mark.parametrize("replicates", [1, 2, 3])
    def test_replicate_counts(self, replicates):
        self._check_grid(
            tiny_scenario(replicates=replicates, seed=4), [STAR], [None]
        )

    def test_tx_variants_and_hub_outage_grid(self):
        scenario = tiny_scenario(seed=9)
        worlds = [None] + list(
            hub_stress_ensemble(scenario.tsim_s, outage_fraction=0.3, size=2)
        )
        self._check_grid(scenario, [STAR, STAR_LOW], worlds)

    def test_correlated_fault_worlds(self):
        scenario = tiny_scenario(seed=13)
        # (0, 1, 3, 6) includes a torso-crossing link, so the correlated
        # blackout group is non-empty.
        config = Configuration((0, 1, 3, 6), 0.0, MacKind.TDMA, RoutingKind.STAR)
        worlds = list(
            sample_fault_ensemble(
                3,
                seed=21,
                horizon_s=scenario.tsim_s,
                locations=config.placement,
                coordinator=0,
                correlated_links=True,
            )
        )
        self._check_grid(scenario, [config], worlds)

    def test_ignores_scenario_fault_field(self):
        """Worlds are explicit arguments; a fault baked into the scenario
        must not leak into the healthy lane."""
        faulted = tiny_scenario(
            fault_scenario=hub_stress_ensemble(2.0, outage_fraction=0.3, size=1)[0]
        )
        healthy = run_fixed_replicates(replace(faulted, fault_scenario=None), STAR)
        batched = evaluate_batch(faulted, [STAR], [None])
        assert_outcomes_identical(batched[(0, 0)], healthy)


class TestOracleBatchModes:
    def test_batch_mode_validation(self):
        with pytest.raises(ValueError, match="batch_mode"):
            tiny_scenario(batch_mode="sometimes")

    def test_auto_and_on_match_off(self):
        configs = [STAR, STAR_LOW]
        records = {}
        for mode in ("off", "auto", "on"):
            oracle = SimulationOracle(tiny_scenario(batch_mode=mode))
            records[mode] = oracle.evaluate_many(configs)
            assert oracle.simulations_run == 2
        for mode in ("auto", "on"):
            for a, b in zip(records["off"], records[mode]):
                assert a.config.key() == b.config.key()
                assert_outcomes_identical(a.outcome, b.outcome)

    def test_duplicate_configs_count_one_hit_in_every_mode(self):
        """[c1, c1, c2] → 2 simulations, 1 cache hit — the dedup
        accounting the batched dispatch must preserve."""
        for mode in ("off", "auto", "on"):
            oracle = SimulationOracle(tiny_scenario(batch_mode=mode))
            out = oracle.evaluate_many([STAR, STAR, STAR_LOW])
            assert oracle.simulations_run == 2, mode
            assert oracle.cache_hits == 1, mode
            assert out[0].config.key() == out[1].config.key()
            assert_outcomes_identical(out[0].outcome, out[1].outcome)

    def test_counters_track_the_path_taken(self):
        on = SimulationOracle(tiny_scenario(batch_mode="on", replicates=2))
        on.evaluate_many([STAR, STAR_LOW])
        stats = on.stats()
        assert stats["batch_mode"] == "on"
        assert stats["batch_calls"] == 1
        assert stats["batched_evaluations"] == 2
        assert stats["batched_lanes"] == 4  # 2 configs × 2 replicates
        assert stats["scalar_evaluations"] == 0

        off = SimulationOracle(tiny_scenario(batch_mode="off"))
        off.evaluate_many([STAR, STAR_LOW])
        stats = off.stats()
        assert stats["batch_calls"] == 0
        assert stats["batched_evaluations"] == 0
        assert stats["scalar_evaluations"] == 2

    def test_auto_needs_two_lanes_but_on_batches_single(self):
        auto = SimulationOracle(tiny_scenario(batch_mode="auto"))
        auto.evaluate(STAR)
        assert auto.stats()["batch_calls"] == 0
        assert auto.stats()["scalar_evaluations"] == 1

        on = SimulationOracle(tiny_scenario(batch_mode="on"))
        on.evaluate(STAR)
        assert on.stats()["batch_calls"] == 1
        assert on.stats()["scalar_evaluations"] == 0

    def test_unsupported_configs_fall_back_to_scalar(self):
        oracle = SimulationOracle(tiny_scenario(batch_mode="on"))
        record = oracle.evaluate(CSMA)
        assert oracle.stats()["batch_calls"] == 0
        assert oracle.stats()["scalar_evaluations"] == 1
        reference = SimulationOracle(tiny_scenario(batch_mode="off")).evaluate(CSMA)
        assert_outcomes_identical(record.outcome, reference.outcome)

    def test_mixed_batch_splits_by_support(self):
        oracle = SimulationOracle(tiny_scenario(batch_mode="auto"))
        oracle.evaluate_many([STAR, STAR_LOW, CSMA, MESH])
        stats = oracle.stats()
        assert stats["batched_evaluations"] == 2
        assert stats["scalar_evaluations"] == 2
        assert oracle.simulations_run == 4

    def test_reset_counters_clears_batch_telemetry(self):
        oracle = SimulationOracle(tiny_scenario(batch_mode="on"))
        oracle.evaluate(STAR)
        oracle.reset_counters()
        stats = oracle.stats()
        assert stats["batch_calls"] == 0
        assert stats["batched_lanes"] == 0
        assert stats["scalar_evaluations"] == 0


class TestEnsembleOracleBatchModes:
    @pytest.fixture(scope="class")
    def ensemble(self):
        return hub_stress_ensemble(2.0, outage_fraction=0.3, size=2)

    def test_auto_matches_off_bit_for_bit(self, ensemble):
        configs = [STAR, STAR_LOW]
        results = {}
        for mode in ("off", "auto"):
            scenario = tiny_scenario(batch_mode=mode)
            with EnsembleOracle(scenario, ensemble, n_jobs=1) as oracle:
                results[mode] = [
                    r.to_dict() for r in oracle.evaluate_many(configs)
                ]
                stats = oracle.stats()
                assert stats["simulations_run"] == len(configs) * (
                    1 + len(ensemble)
                )
                if mode == "auto":
                    # 2 configs × 3 worlds merge into one kernel call.
                    assert stats["batch_calls"] >= 1
                    assert stats["batched_evaluations"] == 6
                else:
                    assert stats["batch_calls"] == 0
        assert results["auto"] == results["off"]

    def test_unsupported_configs_still_use_pool(self, ensemble):
        scenario = tiny_scenario(batch_mode="auto")
        with EnsembleOracle(scenario, ensemble, n_jobs=1) as oracle:
            oracle.evaluate(MESH)
            stats = oracle.stats()
        assert stats["batch_calls"] == 0
        assert stats["simulations_run"] == 1 + len(ensemble)


class TestTraceReportBatchSection:
    """Satellite: trace_report renders the batch-path counters and stays
    graceful on traces recorded before the batched kernel existed."""

    def test_renders_batch_counters(self):
        from repro.analysis.trace_report import summarize

        events = [
            {"kind": "oracle.batch", "configs": 2, "worlds": 3,
             "lanes": 6, "wall_s": 0.25},
            # An event missing fields must not KeyError (forward compat).
            {"kind": "oracle.batch", "configs": 1, "lanes": 2},
        ]
        report = summarize(events)
        assert "batched kernel" in report
        assert "2 call(s)" in report
        assert "8 lane(s)" in report
        assert "3 configuration(s)" in report

    def test_old_traces_skip_the_section(self):
        from repro.analysis.trace_report import summarize

        events = [
            {"kind": "oracle.evaluate", "cached": False,
             "wall_s": 0.1, "replicates": 1},
        ]
        report = summarize(events)
        assert "oracle" in report
        assert "batched kernel" not in report

    def test_cli_batch_flag_emits_trace_events(self, tmp_path, capsys):
        from repro import cli
        from repro.analysis import trace_report
        from repro.obs import read_trace

        trace = tmp_path / "run.jsonl"
        assert cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke",
            "--batch", "on", "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        events = read_trace(trace)
        manifest = events[0]
        assert manifest.get("batch") == "on"
        assert any(e.get("kind") == "oracle.batch" for e in events)
        assert trace_report.main([str(trace)]) == 0
        assert "batched kernel" in capsys.readouterr().out
