"""The benchmark subsystem's ground rules: the legacy reference stack is
faithful, the fast paths are bit-identical to it, and the harness refuses
to report a speedup when results diverge.

The PHY A/B tests here complement the channel-level equivalence tests in
test_channel.py: they run whole traffic patterns through the medium and
compare every per-node counter across (a) the fast delivery path vs the
seed reference loop and (b) the numpy vectorized branch vs the scalar
branch of the fast path.
"""

import math

import pytest

import repro.net.network as network_mod
from repro.bench.hotpath import (
    bench_des_throughput,
    run_hotpath_benchmarks,
    write_report,
)
from repro.bench.reference import (
    LegacySimulator,
    build_network,
    legacy_network,
)
from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.experiments.scenario import make_scenario, make_space
from repro.library.radios import CC2650
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.stats import NodeStats

ALL_LOCATIONS = tuple(range(10))  # 9 receivers: above VECTOR_MIN_RECEIVERS

STAT_COUNTERS = (
    "transmissions", "receptions", "collisions_seen", "below_sensitivity",
    "tx_seconds", "rx_seconds", "fault_rx_suppressed",
)


def build_medium(locations, tx_dbm=0.0, seed=0, sigma=6.0, shadow=0.05,
                 use_fast_path=True):
    sim = Simulator()
    channel = Channel(
        RngStreams(seed=seed),
        fading_params=FadingParameters(
            sigma_db=sigma, shadow_fraction=shadow
        ),
    )
    medium = Medium(sim, channel, use_fast_path=use_fast_path)
    radios, stats = {}, {}
    for loc in locations:
        stats[loc] = NodeStats(loc)
        radios[loc] = Radio(
            sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(tx_dbm),
            stats[loc],
        )
    return sim, radios, stats


def drive_traffic(sim, radios, locations, n_packets=40):
    """Deterministic overlapping broadcasts (some concurrent, so the
    interference/capture branch is exercised too)."""
    airtime = CC2650.packet_airtime_s(100)
    busy_until = {loc: 0.0 for loc in locations}
    for k in range(n_packets):
        sender = locations[k % len(locations)]
        start = (k // len(locations)) * airtime * 1.7 + 0.0001 * (
            k % len(locations)
        )
        if start < busy_until[sender]:
            continue
        busy_until[sender] = start + airtime
        packet = Packet(
            origin=sender, seq=k,
            destination=locations[(k + 1) % len(locations)],
            length_bytes=100,
        ).originated()
        sim.schedule(start, radios[sender].transmit, packet)
    sim.run()


def counters(stats):
    return {
        loc: {name: getattr(s, name) for name in STAT_COUNTERS}
        for loc, s in stats.items()
    }


class TestFastPathBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_fast_equals_reference_on_wide_fanout(self, seed):
        """9 receivers → the vectorized branch; every counter must match
        the seed reference loop exactly."""
        results = {}
        for fast in (True, False):
            sim, radios, stats = build_medium(
                ALL_LOCATIONS, seed=seed, use_fast_path=fast
            )
            drive_traffic(sim, radios, ALL_LOCATIONS)
            results[fast] = (counters(stats), sim.events_executed)
        assert results[True] == results[False]

    @pytest.mark.parametrize("seed", [1, 13])
    def test_vector_equals_scalar_branch(self, seed, monkeypatch):
        """Forcing the scalar branch (threshold above any fan-out) must
        change nothing: the two branches make the same float comparisons."""
        baseline = None
        for threshold in (8, 10_000):
            monkeypatch.setattr(Medium, "VECTOR_MIN_RECEIVERS", threshold)
            sim, radios, stats = build_medium(ALL_LOCATIONS, seed=seed)
            drive_traffic(sim, radios, ALL_LOCATIONS)
            snapshot = (counters(stats), sim.events_executed)
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline

    @pytest.mark.parametrize("seed", [5, 31])
    def test_fast_equals_reference_with_faulty_radio(self, seed):
        """A failed radio must be suppressed identically on both paths
        (no RX energy, no shadow-chain tick)."""
        results = {}
        for fast in (True, False):
            sim, radios, stats = build_medium(
                ALL_LOCATIONS, seed=seed, use_fast_path=fast
            )
            radios[4].failed = True
            drive_traffic(sim, radios, ALL_LOCATIONS)
            results[fast] = (counters(stats), sim.events_executed)
        assert results[True] == results[False]
        assert results[True][0][4]["fault_rx_suppressed"] > 0


class TestLegacyReferenceStack:
    def _scenario_and_config(self):
        scenario = make_scenario("smoke")
        config = max(
            make_space("smoke").feasible_configurations(),
            key=lambda c: (len(c.placement), c.key()),
        )
        return scenario, config

    def test_legacy_stack_outcome_is_bit_identical(self):
        """The frozen seed implementations and the optimized stack must
        tell exactly the same story about a full replicate."""
        scenario, config = self._scenario_and_config()
        fast = build_network(scenario, config).run(scenario.tsim_s)
        legacy = legacy_network(scenario, config).run(scenario.tsim_s)
        for name in (
            "pdr", "node_pdrs", "node_powers_mw", "worst_power_mw",
            "nlt_days", "totals", "events_executed", "mean_latency_s",
        ):
            assert getattr(fast, name) == getattr(legacy, name), name

    def test_legacy_network_restores_simulator_symbol(self):
        """legacy_network patches the module's Simulator during
        construction; the patch must never leak."""
        scenario, config = self._scenario_and_config()
        net = legacy_network(scenario, config)
        assert network_mod.Simulator is Simulator
        assert isinstance(net.sim, LegacySimulator)
        assert net.medium.use_fast_path is False

    def test_legacy_simulator_matches_new_kernel(self):
        """Identical schedule/cancel workloads must execute the same
        events at the same times on both kernels."""
        from repro.bench.hotpath import _timer_churn

        new, old = Simulator(), LegacySimulator()
        assert _timer_churn(new, 2000) == _timer_churn(old, 2000)
        assert new.now == old.now
        assert new.pending_count == old.pending_count == 0


class TestHarness:
    def test_des_benchmark_reports_consistent_counts(self):
        report = bench_des_throughput(n_events=2000, repeats=1)
        assert report["identical_event_counts"]
        assert report["events"] >= 2000
        assert report["fast_wall_seconds"] > 0
        assert report["speedup"] == (
            report["legacy_wall_seconds"] / report["fast_wall_seconds"]
        )

    def test_des_benchmark_raises_on_divergence(self, monkeypatch):
        """The harness must refuse to benchmark kernels that disagree."""
        real = LegacySimulator.run

        def tampered(self, *a, **k):
            result = real(self, *a, **k)
            self._events_executed += 1  # simulate a divergent kernel
            return result

        monkeypatch.setattr(LegacySimulator, "run", tampered)
        with pytest.raises(AssertionError, match="different event counts"):
            bench_des_throughput(n_events=500, repeats=1)

    def test_write_report_round_trips(self, tmp_path):
        import json

        path = tmp_path / "bench.json"
        payload = {"benchmark": "hotpath", "speedup": 1.5}
        write_report(payload, str(path))
        assert json.loads(path.read_text()) == payload
