"""Kill/resume chaos test for fleet campaigns.

The campaign-level extension of the chaos smoke: a real ``hi-explore
campaign`` subprocess is SIGKILLed mid-shard (whole process group, so
pool workers die too), resumed with ``--resume``, and the final
``aggregate.json``/``atlas.json`` must be byte-identical to an
uninterrupted golden run of the same spec.

The kill point is placed inside the golden run's measured wall window so
it reliably lands while wearer journals are being written; if a fast
machine finishes the victim before the kill, the test degrades to a
pure-replay check (still asserting byte identity), mirroring
``scripts/chaos_smoke.py``.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ARGV = [
    "campaign", "--wearers", "4", "--preset", "smoke",
    "--pdr-min", "90", "--pdr-min", "95", "--jobs", "2", "--shards", "2",
]


def _child_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return env


def _cli(extra):
    return [sys.executable, "-m", "repro.cli"] + ARGV + extra


class TestCampaignKillResume:
    def test_sigkilled_campaign_resumes_byte_identical(self, tmp_path):
        golden_dir = tmp_path / "golden"
        victim_dir = tmp_path / "victim"

        start = time.monotonic()
        subprocess.run(
            _cli(["--out", str(golden_dir)]),
            env=_child_env(),
            check=True,
            stdout=subprocess.DEVNULL,
        )
        wall = time.monotonic() - start
        golden = (golden_dir / "aggregate.json").read_bytes()
        golden_atlas = (golden_dir / "atlas.json").read_bytes()

        victim = subprocess.Popen(
            _cli(["--out", str(victim_dir)]),
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            start_new_session=True,  # kill must also take pool workers
        )
        # arm the kill only after the campaign manifest lands — before
        # that there is nothing to resume — then strike mid-shard
        deadline = time.monotonic() + 60.0
        while (
            victim.poll() is None
            and not (victim_dir / "campaign.json").exists()
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        try:
            victim.wait(timeout=max(0.05, 0.3 * wall))
        except subprocess.TimeoutExpired:
            pass
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
            assert victim.returncode != 0
        # if the kill landed during artifact writing, drop the artifacts
        # so the diff below proves the resume rewrote them
        for name in ("aggregate.json", "atlas.json", "telemetry.json"):
            path = victim_dir / name
            if path.exists():
                path.unlink()

        proc = subprocess.run(
            _cli(["--resume", str(victim_dir)]),
            env=_child_env(),
            stdout=subprocess.DEVNULL,
        )
        assert proc.returncode == 0

        assert (victim_dir / "aggregate.json").read_bytes() == golden
        assert (victim_dir / "atlas.json").read_bytes() == golden_atlas

    def test_resume_under_different_worker_count(self, tmp_path):
        """A campaign killed under --jobs 2 finishes under --jobs 1: the
        shard count pinned at creation keeps every journal findable."""
        golden_dir = tmp_path / "golden"
        victim_dir = tmp_path / "victim"
        subprocess.run(
            _cli(["--out", str(golden_dir)]),
            env=_child_env(),
            check=True,
            stdout=subprocess.DEVNULL,
        )
        golden = (golden_dir / "aggregate.json").read_bytes()

        victim = subprocess.Popen(
            _cli(["--out", str(victim_dir)]),
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            start_new_session=True,
        )
        # kill as soon as the campaign manifest lands (mid-shard, past
        # interpreter startup); fall through if the run beats us to done
        deadline = time.monotonic() + 60.0
        while (
            victim.poll() is None
            and not (victim_dir / "campaign.json").exists()
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
        for name in ("aggregate.json", "atlas.json", "telemetry.json"):
            path = victim_dir / name
            if path.exists():
                path.unlink()

        resume_argv = [
            sys.executable, "-m", "repro.cli", "campaign",
            "--wearers", "4", "--preset", "smoke",
            "--pdr-min", "90", "--pdr-min", "95",
            "--jobs", "1",  # different parallelism than the killed run
            "--resume", str(victim_dir),
        ]
        proc = subprocess.run(
            resume_argv, env=_child_env(), stdout=subprocess.DEVNULL
        )
        assert proc.returncode == 0
        assert (victim_dir / "aggregate.json").read_bytes() == golden
