"""End-to-end fabric tests: coordinator + worker agents, byte-identity.

The correctness contract of the cross-host fabric is that a fleet of
pulling workers produces **byte-identical** ``aggregate.json`` and
``atlas.json`` to a single-host ``run_campaign`` of the same spec — no
matter how leases were interleaved, expired, or reassigned along the
way.  These tests run the real service on an ephemeral loopback port
with real :class:`~repro.campaign.worker.WorkerAgent` loops on threads
(blocking HTTP against the asyncio server), simulate worker death by
abandoning leases, and diff the artifacts against a golden run.

Shard-count independence is part of the assertion: the golden run uses
one shard per wearer while the fleet runs use other shard counts — the
aggregate is built from per-wearer summary bytes only, so the lease
granularity must never leak into the artifacts.
"""

import asyncio
import json
import threading

import pytest

from repro.campaign.queue import shard_payload_crc
from repro.campaign.runner import run_campaign, run_wearer_task, wearer_run_dir
from repro.campaign.service import CampaignService
from repro.campaign.spec import make_population
from repro.campaign.worker import WorkerAgent
from repro.core.journal import JOURNAL_FILENAME, SUMMARY_FILENAME

from tests.test_campaign_service import _request


def _spec(size=4, name="fleet", base_seed=40):
    return make_population(
        size, preset="smoke", base_seed=base_seed, pdr_bounds=(90, 95),
        name=name,
    )


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One single-host run of the fleet spec; every test diffs against it."""
    spec = _spec()
    directory = tmp_path_factory.mktemp("golden") / "campaign"
    run_campaign(spec, directory, shards=len(spec.wearers), jobs=1)
    return {
        "spec": spec,
        "aggregate": (directory / "aggregate.json").read_bytes(),
        "atlas": (directory / "atlas.json").read_bytes(),
    }


async def _submit_fleet(port, spec):
    status, payload = await _request(
        port, "POST", "/campaigns", {**spec.to_dict(), "execution": "fleet"}
    )
    assert status in (200, 202)
    assert payload["state"] in ("fleet", "done")
    return payload["id"]


def _agent(port, workdir, name, **kwargs):
    kwargs.setdefault("poll_interval", 0.1)
    kwargs.setdefault("exit_idle", 1.0)
    return WorkerAgent(
        f"http://127.0.0.1:{port}", workdir, name=name, **kwargs
    )


async def _drain_workers(agents):
    """Run every agent's pull loop on a thread until all exit."""
    codes = {}

    def loop(agent):
        codes[agent.name] = agent.run_forever()

    threads = [
        threading.Thread(target=loop, args=(agent,), daemon=True)
        for agent in agents
    ]
    for t in threads:
        t.start()
    while any(t.is_alive() for t in threads):
        await asyncio.sleep(0.1)
    return codes


class TestFleetExecution:
    def test_two_workers_match_single_host_bytes(self, tmp_path, golden):
        async def scenario():
            service = CampaignService(tmp_path / "coord", lease_ttl=30.0)
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, golden["spec"])
                workers = [
                    _agent(port, tmp_path / "work", f"w{i}")
                    for i in (1, 2)
                ]
                codes = await _drain_workers(workers)
                assert set(codes.values()) == {0}

                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert (status, payload["state"]) == (200, "done")
                assert payload["queue"]["pending"] == 0
                assert payload["queue"]["leased"] == 0
                assert all(
                    s["state"] == "committed" for s in payload["shards"]
                )

                status, result = await _request(
                    port, "GET", f"/campaigns/{cid}/result"
                )
                assert status == 200
                return cid
            finally:
                await service.stop()

        cid = asyncio.run(scenario())
        directory = tmp_path / "coord" / cid
        assert (directory / "aggregate.json").read_bytes() == (
            golden["aggregate"]
        )
        assert (directory / "atlas.json").read_bytes() == golden["atlas"]
        telemetry = json.loads((directory / "telemetry.json").read_text())
        census = telemetry["pool"]["workers"]
        assert set(census) <= {"coordinator", "w1", "w2"}

    def test_reassigned_shard_resumes_from_journals(self, tmp_path, golden):
        """A worker dies mid-shard; after the TTL the shard is reassigned
        and the replacement resumes from the dead worker's journals
        (shared workdir) — completed wearers load, a torn journal
        replays its tail — and the artifacts still match the golden
        bytes."""
        spec = golden["spec"]
        workdir = tmp_path / "work"

        async def scenario():
            service = CampaignService(
                tmp_path / "coord", shards=1, lease_ttl=0.8
            )
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, spec)
                # "dead" worker: leases the (single) shard over the real
                # wire, runs two wearers, then vanishes — no heartbeat,
                # no commit.
                status, payload = await _request(
                    port, "POST", f"/campaigns/{cid}/leases",
                    {"worker": "doomed"},
                )
                assert status == 200 and payload["lease"]
                lease = payload["lease"]
                ran = []
                for wearer in lease["wearers"][:2]:
                    ran.append(await asyncio.to_thread(
                        run_wearer_task,
                        {
                            "campaign": lease["campaign"],
                            "preset": lease["preset"],
                            "wearer": wearer,
                            "run_dir": str(wearer_run_dir(
                                workdir / cid, lease["shard"],
                                wearer["wearer_id"],
                            )),
                            "cache_dir": None,
                            "batch_mode": "auto",
                        },
                    ))
                assert [r["state"] for r in ran] == ["ran", "ran"]

                # Tear the second wearer's run mid-write: drop its
                # summary and truncate the journal, as a SIGKILL would.
                torn_dir = wearer_run_dir(
                    workdir / cid, lease["shard"], ran[1]["wearer_id"]
                )
                (torn_dir / SUMMARY_FILENAME).unlink()
                journal = torn_dir / JOURNAL_FILENAME
                lines = journal.read_text().splitlines(keepends=True)
                assert len(lines) > 2
                journal.write_text("".join(lines[: len(lines) // 2]))

                await asyncio.sleep(1.0)  # let the lease TTL lapse

                rescuer = _agent(port, workdir, "rescuer")
                codes = await _drain_workers([rescuer])
                assert codes == {"rescuer": 0}
                # one wearer loaded from its summary, one replayed from
                # the torn journal, two ran fresh
                assert rescuer.wearers_run == len(spec.wearers)
                assert rescuer.wearers_resumed >= 2

                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert payload["state"] == "done"
                return cid
            finally:
                await service.stop()

        cid = asyncio.run(scenario())
        directory = tmp_path / "coord" / cid
        assert (directory / "aggregate.json").read_bytes() == (
            golden["aggregate"]
        )
        assert (directory / "atlas.json").read_bytes() == golden["atlas"]


class TestFleetHotPath:
    """PR 9 end-to-end: warm cross-campaign cache and work stealing,
    both under the byte-identity contract."""

    def test_warm_campaign_simulates_nothing(self, tmp_path, golden):
        """Two campaigns over the same wearer population (different
        names) against one coordinator: the second is served entirely
        from the wearer cache — its worker writes zero run journals —
        and still produces byte-identical artifacts."""
        warm_spec = _spec(name="fleet-warm")
        warm_golden = tmp_path / "warm-golden"
        run_campaign(warm_spec, warm_golden, jobs=1)

        async def scenario():
            service = CampaignService(tmp_path / "coord", lease_ttl=30.0)
            _, port = await service.start("127.0.0.1", 0)
            try:
                cold_id = await _submit_fleet(port, golden["spec"])
                cold = _agent(port, tmp_path / "work-cold", "w-cold")
                codes = await _drain_workers([cold])
                assert codes == {"w-cold": 0}

                warm_id = await _submit_fleet(port, warm_spec)
                warm = _agent(port, tmp_path / "work-warm", "w-warm")
                codes = await _drain_workers([warm])
                assert codes == {"w-warm": 0}
                assert warm.wearers_run == len(warm_spec.wearers)
                return cold_id, warm_id
            finally:
                await service.stop()

        cold_id, warm_id = asyncio.run(scenario())
        # the warm worker never simulated: no run journal anywhere in
        # its workdir (cache hits write summary.json only)
        warm_journals = list(
            (tmp_path / "work-warm").rglob(JOURNAL_FILENAME)
        )
        assert warm_journals == []
        for cid, want_dir in (
            (cold_id, None), (warm_id, warm_golden),
        ):
            directory = tmp_path / "coord" / cid
            if want_dir is None:
                want = golden["aggregate"], golden["atlas"]
            else:
                want = (
                    (want_dir / "aggregate.json").read_bytes(),
                    (want_dir / "atlas.json").read_bytes(),
                )
            assert (directory / "aggregate.json").read_bytes() == want[0]
            assert (directory / "atlas.json").read_bytes() == want[1]

    def test_stealing_rescues_a_straggler_shard(self, tmp_path, golden):
        """One shard, a throttled holder, a fast idle worker: the idle
        worker splits the shard, steals tail wearers, and the merged
        result is byte-identical to the single-host golden."""
        spec = golden["spec"]

        async def scenario():
            service = CampaignService(
                tmp_path / "coord", shards=1, lease_ttl=30.0
            )
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, spec)
                slow = _agent(
                    port, tmp_path / "work-slow", "slow", throttle_s=0.6
                )
                fast = _agent(port, tmp_path / "work-fast", "fast")
                codes = {}

                def loop(agent):
                    codes[agent.name] = agent.run_forever()

                slow_thread = threading.Thread(
                    target=loop, args=(slow,), daemon=True
                )
                slow_thread.start()
                # the slow worker must own the shard before the fast one
                # arrives, or there is nothing to steal
                while True:
                    status, payload = await _request(
                        port, "GET", f"/campaigns/{cid}/status"
                    )
                    if not payload["queue"]["pending"]:
                        break
                    await asyncio.sleep(0.05)
                fast_thread = threading.Thread(
                    target=loop, args=(fast,), daemon=True
                )
                fast_thread.start()
                while slow_thread.is_alive() or fast_thread.is_alive():
                    await asyncio.sleep(0.1)
                assert set(codes.values()) == {0}

                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert payload["state"] == "done"
                # the steal actually happened: the fast worker simulated
                # at least one wearer of the slow worker's only shard
                assert fast.wearers_run >= 1
                assert slow.wearers_run + fast.wearers_run >= len(
                    spec.wearers
                )
                return cid
            finally:
                await service.stop()

        cid = asyncio.run(scenario())
        directory = tmp_path / "coord" / cid
        assert (directory / "aggregate.json").read_bytes() == (
            golden["aggregate"]
        )
        assert (directory / "atlas.json").read_bytes() == golden["atlas"]


class TestCommitProtocol:
    """Wire-level commit semantics with fabricated summaries (fast)."""

    def _fake_summaries(self, lease, tag="a"):
        return {
            w["wearer_id"]: {
                "status": "infeasible",
                "best": None,
                "oracle_stats": {},
                "tag": tag,
            }
            for w in lease["wearers"]
        }

    def test_double_commit_is_idempotent_and_divergence_409s(
        self, tmp_path
    ):
        spec = _spec(size=2, name="commitproto")

        async def scenario():
            service = CampaignService(tmp_path / "coord", shards=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, spec)
                status, payload = await _request(
                    port, "POST", f"/campaigns/{cid}/leases",
                    {"worker": "w1"},
                )
                lease = payload["lease"]
                summaries = self._fake_summaries(lease)
                commit = {
                    "worker": "w1",
                    "token": lease["token"],
                    "crc": shard_payload_crc(summaries),
                    "summaries": summaries,
                }
                path = f"/campaigns/{cid}/shards/{lease['shard']}/complete"

                status, first = await _request(port, "POST", path, commit)
                assert (status, first["duplicate"]) == (200, False)
                assert first["campaign_state"] == "done"

                # identical double-commit: accepted as a no-op
                status, second = await _request(port, "POST", path, commit)
                assert (status, second["duplicate"]) == (200, True)

                # divergent bytes for the same shard: integrity error
                divergent = self._fake_summaries(lease, tag="b")
                status, refused = await _request(
                    port, "POST", path,
                    {**commit, "crc": shard_payload_crc(divergent),
                     "summaries": divergent},
                )
                assert status == 409
                assert "integrity" in refused["error"]

                # a corrupt upload (CRC does not match content) is 400
                status, refused = await _request(
                    port, "POST", path, {**commit, "crc": "deadbeef"}
                )
                assert status == 400
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_lease_surface_errors(self, tmp_path):
        spec = _spec(size=2, name="leaseerr")

        async def scenario():
            service = CampaignService(tmp_path / "coord", shards=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, spec)
                # heartbeat on a never-granted token
                status, payload = await _request(
                    port, "POST",
                    f"/campaigns/{cid}/leases/nosuchtoken/heartbeat",
                )
                assert status == 410
                # lease endpoints on an unknown campaign
                status, payload = await _request(
                    port, "POST", "/campaigns/feedfacefeedface/leases",
                    {"worker": "w1"},
                )
                assert status == 404
                # lease endpoints on a local-execution campaign
                local = _spec(size=2, name="localonly")
                status, payload = await _request(
                    port, "POST", "/campaigns", local.to_dict()
                )
                assert status in (200, 202)
                status, payload = await _request(
                    port, "POST",
                    f"/campaigns/{local.fingerprint()}/leases",
                    {"worker": "w1"},
                )
                assert status == 409
                await service.join()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_coordinator_restart_recovers_queue_state(self, tmp_path):
        """Kill the coordinator between commits: the reopened service
        replays ``queue.jsonl``, keeps committed shards committed, and
        finalizes when the remaining shards land."""
        spec = _spec(size=4, name="recover")
        root = tmp_path / "coord"

        async def first_life():
            service = CampaignService(root, shards=2)
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, spec)
                status, payload = await _request(
                    port, "POST", f"/campaigns/{cid}/leases",
                    {"worker": "w1"},
                )
                lease = payload["lease"]
                summaries = self._fake_summaries(lease)
                status, _ = await _request(
                    port, "POST",
                    f"/campaigns/{cid}/shards/{lease['shard']}/complete",
                    {"worker": "w1", "token": lease["token"],
                     "crc": shard_payload_crc(summaries),
                     "summaries": summaries},
                )
                assert status == 200
                return cid
            finally:
                await service.stop()  # no drain: leases stay in the log

        async def second_life(cid):
            service = CampaignService(root, shards=2)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert status == 200
                assert payload["state"] == "fleet"
                assert payload["queue"]["committed"] >= 1
                # a fresh worker finishes the remaining shards
                status, grant = await _request(
                    port, "POST", f"/campaigns/{cid}/leases",
                    {"worker": "w2"},
                )
                while grant["lease"]:
                    lease = grant["lease"]
                    summaries = self._fake_summaries(lease)
                    status, done = await _request(
                        port, "POST",
                        f"/campaigns/{cid}/shards/{lease['shard']}/complete",
                        {"worker": "w2", "token": lease["token"],
                         "crc": shard_payload_crc(summaries),
                         "summaries": summaries},
                    )
                    assert status == 200
                    status, grant = await _request(
                        port, "POST", f"/campaigns/{cid}/leases",
                        {"worker": "w2"},
                    )
                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert payload["state"] == "done"
            finally:
                await service.stop()

        cid = asyncio.run(first_life())
        asyncio.run(second_life(cid))
        assert (root / cid / "aggregate.json").exists()


class TestHardenedWorker:
    """PR 10 worker-side hardening: endpoint failover lists,
    decorrelated-jitter backoff, and signed fleet traffic."""

    def test_client_parses_endpoint_list_and_rotates(self):
        from repro.campaign.worker import CoordinatorClient

        client = CoordinatorClient(
            "http://127.0.0.1:1001, http://standby.example:1002"
        )
        assert client.endpoints == [
            ("127.0.0.1", 1001), ("standby.example", 1002),
        ]
        assert (client.host, client.port) == ("127.0.0.1", 1001)
        client.rotate()
        assert (client.host, client.port) == ("standby.example", 1002)
        client.rotate()
        assert (client.host, client.port) == ("127.0.0.1", 1001)
        assert client.rotations == 2

        solo = CoordinatorClient("http://127.0.0.1:1001")
        solo.rotate()  # single endpoint: rotation is a no-op
        assert (solo.rotations, solo.port) == (0, 1001)

        with pytest.raises(ValueError):
            CoordinatorClient("https://127.0.0.1:1001")
        with pytest.raises(ValueError):
            CoordinatorClient(",")

    def test_backoff_jitter_is_bounded_and_per_worker(self, tmp_path):
        def agent(name):
            return WorkerAgent(
                "http://127.0.0.1:1001", tmp_path, name=name,
                backoff_base=0.5, backoff_cap=30.0,
            )

        # decorrelated jitter: every delay lives in [base, min(cap,
        # prev*3)] and the walk never crosses the cap
        walker = agent("alpha")
        delay, seen = walker.backoff_base, []
        for _ in range(50):
            prev = delay
            delay = walker._next_delay(prev)
            assert walker.backoff_base <= delay <= walker.backoff_cap
            assert delay <= max(prev * 3, walker.backoff_base)
            seen.append(delay)
        assert len(set(seen)) > 10  # it actually jitters

        # the stream is seeded by the worker name, never the global RNG:
        # same name → same stream (a restarted worker is reproducible,
        # and simulation determinism is untouched); different names →
        # decorrelated peers that cannot thundering-herd in lockstep
        first = agent("alpha")
        probe = [first._next_delay(1.0) for _ in range(8)]
        again = agent("alpha")
        assert [again._next_delay(1.0) for _ in range(8)] == probe
        other = agent("beta")
        assert [other._next_delay(1.0) for _ in range(8)] != probe

    def test_authed_fleet_matches_single_host_bytes(
        self, tmp_path, golden
    ):
        """The ISSUE's CI requirement at unit scale: a whole fleet run
        with HMAC auth enabled end-to-end produces artifacts
        byte-identical to the unauthenticated single-host run."""
        secret = "fleet-test-secret"

        async def scenario():
            service = CampaignService(
                tmp_path / "coord", lease_ttl=30.0, fabric_secret=secret
            )
            _, port = await service.start("127.0.0.1", 0)
            try:
                cid = await _submit_fleet(port, golden["spec"])
                workers = [
                    _agent(port, tmp_path / "work", f"w{i}",
                           fabric_secret=secret)
                    for i in (1, 2)
                ]
                codes = await _drain_workers(workers)
                assert set(codes.values()) == {0}
                status, payload = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert (status, payload["state"]) == (200, "done")
                return cid
            finally:
                await service.stop()

        cid = asyncio.run(scenario())
        directory = tmp_path / "coord" / cid
        assert (directory / "aggregate.json").read_bytes() == (
            golden["aggregate"]
        )
        assert (directory / "atlas.json").read_bytes() == golden["atlas"]
