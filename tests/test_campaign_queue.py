"""Lease-queue state machine tests (no simulation — fabricated summaries).

The :class:`~repro.campaign.queue.CampaignQueue` is exercised directly
with an injected fake clock, so lease TTLs, expiries, and reassignment
races are deterministic and instant.  Commit payloads are fabricated
(the queue validates shape + CRC, not physics), which keeps this module
fast; the end-to-end byte-identity contract against real simulations
lives in ``test_campaign_fleet.py``.
"""

import json

import pytest

from repro.campaign.queue import (
    CampaignQueue,
    QueueError,
    shard_payload_crc,
)
from repro.campaign.spec import make_population
from repro.core.journal import (
    QUEUE_LOG_FILENAME,
    SUMMARY_FILENAME,
    JournalError,
    shard_directory,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _spec(size=5, name="queue", base_seed=11):
    return make_population(
        size, preset="smoke", base_seed=base_seed, pdr_bounds=(90, 95),
        name=name,
    )


def _summary(wearer_id, tag="a"):
    """A fabricated (but aggregatable) wearer summary."""
    return {
        "status": "infeasible",
        "best": None,
        "oracle_stats": {"simulations_run": 1, "cache_hits": 0},
        "tag": tag,
        "wearer_id": wearer_id,
    }


def _shard_summaries(queue, shard, tag="a"):
    return {w: _summary(w, tag) for w in queue.wearers_of[shard]}


def _commit_shard(queue, shard, worker="w", tag="a", token=None):
    summaries = _shard_summaries(queue, shard, tag)
    return queue.commit(
        shard, summaries, shard_payload_crc(summaries), worker=worker,
        token=token,
    )


def _queue(tmp_path, spec=None, shards=3, ttl=30.0, clock=None):
    return CampaignQueue(
        spec or _spec(),
        tmp_path / "campaign",
        shards=shards,
        lease_ttl=ttl,
        clock=clock or FakeClock(),
    )


def _nonempty_shards(queue):
    return [s for s, w in queue.wearers_of.items() if w]


class TestLeaseStateMachine:
    def test_acquire_leases_lowest_pending_shard(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.acquire("w1")
        assert lease is not None
        assert lease["shard"] == min(_nonempty_shards(queue))
        assert lease["campaign"] == queue.fingerprint
        assert lease["preset"] == queue.spec.preset
        assert lease["ttl"] == queue.lease_ttl
        assert sorted(w["wearer_id"] for w in lease["wearers"]) == sorted(
            queue.wearers_of[lease["shard"]]
        )

    def test_queue_exhausts_to_none(self, tmp_path):
        queue = _queue(tmp_path)
        leases = []
        while True:
            lease = queue.acquire("w1")
            if lease is None:
                break
            leases.append(lease["shard"])
        assert sorted(leases) == _nonempty_shards(queue)
        assert queue.counts()["pending"] == 0

    def test_heartbeat_extends_the_lease(self, tmp_path):
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease = queue.acquire("w1")
        clock.advance(8.0)
        queue.heartbeat(lease["token"])  # renewed to now+10
        clock.advance(8.0)  # past the *original* expiry, inside the renewal
        renewal = queue.heartbeat(lease["token"])
        assert renewal["shard"] == lease["shard"]

    def test_expired_lease_is_reclaimed_and_reassigned(self, tmp_path):
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease = queue.acquire("w1")
        clock.advance(10.1)
        release = queue.acquire("w2")
        assert release["shard"] == lease["shard"]
        assert release["token"] != lease["token"]
        with pytest.raises(QueueError) as exc:
            queue.heartbeat(lease["token"])
        assert exc.value.status == 410

    def test_release_returns_shard_to_pending(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.acquire("w1")
        outcome = queue.release(lease["token"], reason="drain")
        assert outcome == {"shard": lease["shard"], "state": "pending"}
        with pytest.raises(QueueError) as exc:
            queue.release(lease["token"])
        assert exc.value.status == 410
        assert queue.acquire("w2")["shard"] == lease["shard"]

    def test_commit_invalidates_every_live_token_for_the_shard(
        self, tmp_path
    ):
        # w1 leases, goes silent, the lease expires, w2 is reassigned the
        # shard and commits: w1's *and* w2's tokens must both be dead.
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease1 = queue.acquire("w1")
        clock.advance(10.1)
        lease2 = queue.acquire("w2")
        assert lease2["shard"] == lease1["shard"]
        _commit_shard(queue, lease2["shard"], worker="w2",
                      token=lease2["token"])
        for token in (lease1["token"], lease2["token"]):
            with pytest.raises(QueueError) as exc:
                queue.heartbeat(token)
            assert exc.value.status == 410

    def test_stale_worker_commit_collapses_to_duplicate(self, tmp_path):
        # The zombie w1 finishes *after* w2 already committed identical
        # bytes: first-writer-wins, the late commit is a no-op.
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease1 = queue.acquire("w1")
        clock.advance(10.1)
        lease2 = queue.acquire("w2")
        first = _commit_shard(queue, lease2["shard"], worker="w2")
        assert first["duplicate"] is False
        late = _commit_shard(queue, lease1["shard"], worker="w1",
                             token=lease1["token"])
        assert late["duplicate"] is True


def _subset_commit(queue, shard, wearer_ids, worker="w", tag="a",
                   token=None):
    summaries = {w: _summary(w, tag) for w in wearer_ids}
    return queue.commit(
        shard, summaries, shard_payload_crc(summaries), worker=worker,
        token=token,
    )


class TestWorkStealing:
    """Wearer-grain stealing: split, tail-first sub-leases, merged
    commits, and the races satellite (c) pins."""

    def _split_queue(self, tmp_path, ttl=30.0, clock=None, steal=True,
                     size=5):
        queue = CampaignQueue(
            _spec(size=size), tmp_path / "campaign", shards=1,
            lease_ttl=ttl, clock=clock or FakeClock(),
            steal_enabled=steal,
        )
        return queue, queue.acquire("holder")

    def test_acquire_splits_straggler_tail_first(self, tmp_path):
        queue, lease = self._split_queue(tmp_path)
        stolen = queue.acquire("thief")
        assert stolen is not None
        assert stolen["shard"] == lease["shard"]
        # tail-first: the holder runs head-first, so the fronts meet
        # with at most one wearer simulated twice
        wearers = queue.wearers_of[lease["shard"]]
        assert stolen["sub"] == wearers[-1]
        assert [w["wearer_id"] for w in stolen["wearers"]] == [wearers[-1]]
        assert queue.counts()["split"] == 1
        # a second thief gets the next wearer from the tail
        second = queue.acquire("thief2")
        assert second["sub"] == wearers[-2]

    def test_steal_disabled_leaves_straggler_alone(self, tmp_path):
        queue, _ = self._split_queue(tmp_path, steal=False)
        assert queue.acquire("thief") is None
        assert queue.counts()["split"] == 0

    def test_worker_never_steals_from_itself(self, tmp_path):
        queue, _ = self._split_queue(tmp_path)
        assert queue.acquire("holder") is None

    def test_holder_heartbeat_carries_stolen_set(self, tmp_path):
        queue, lease = self._split_queue(tmp_path)
        stolen = queue.acquire("thief")
        beat = queue.heartbeat(lease["token"])
        assert beat["stolen"] == [stolen["sub"]]
        # stays stolen after the thief commits (committed ≠ returned)
        _subset_commit(queue, lease["shard"], [stolen["sub"]],
                       worker="thief", token=stolen["token"])
        assert queue.heartbeat(lease["token"])["stolen"] == [stolen["sub"]]

    def test_merged_commits_seal_like_an_unsplit_shard(self, tmp_path):
        queue, lease = self._split_queue(tmp_path)
        shard = lease["shard"]
        stolen = queue.acquire("thief")
        sub = _subset_commit(queue, shard, [stolen["sub"]], worker="thief",
                             token=stolen["token"])
        assert sub["state"] == "split"
        assert sub["committed_wearers"] == [stolen["sub"]]
        remainder = [w for w in queue.wearers_of[shard]
                     if w != stolen["sub"]]
        sealed = _subset_commit(queue, shard, remainder, worker="holder",
                                token=lease["token"])
        assert sealed["state"] == "committed"
        assert queue.done
        # the merged seal is keyed by the *full* shard CRC — replay
        # cannot tell a merged shard from an unsplit one
        full = _shard_summaries(queue, shard)
        assert queue._shards[shard]["crc"] == shard_payload_crc(full)
        # every live token died with the seal
        for token in (lease["token"], stolen["token"]):
            with pytest.raises(QueueError) as exc:
                queue.heartbeat(token)
            assert exc.value.status == 410

    def test_thief_sub_lease_expires_back_to_stealable(self, tmp_path):
        clock = FakeClock()
        queue, _ = self._split_queue(tmp_path, ttl=10.0, clock=clock)
        stolen = queue.acquire("thief")
        clock.advance(10.1)
        with pytest.raises(QueueError) as exc:
            queue.heartbeat(stolen["token"])
        assert exc.value.status == 410
        regrant = queue.acquire("thief2")
        assert regrant["sub"] == stolen["sub"]
        assert regrant["token"] != stolen["token"]

    def test_release_after_expiry_and_regrant_is_refused(self, tmp_path):
        # Satellite race: w1's lease expires, the shard is re-granted to
        # w2, then w1's belated release arrives — it must get 410 and
        # leave w2's lease untouched (not return the shard to pending).
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease1 = queue.acquire("w1")
        clock.advance(10.1)
        lease2 = queue.acquire("w2")
        assert lease2["shard"] == lease1["shard"]
        with pytest.raises(QueueError) as exc:
            queue.release(lease1["token"], reason="belated drain")
        assert exc.value.status == 410
        assert queue.heartbeat(lease2["token"])["shard"] == lease2["shard"]

    def test_sub_commit_racing_full_commit_collapses_to_duplicate(
        self, tmp_path
    ):
        # Satellite race: the holder never heard about the steal and
        # commits the full wearer set while the thief still holds its
        # sub-lease; the shard seals, and the thief's later identical
        # sub-commit is a byte-compared no-op.
        queue, lease = self._split_queue(tmp_path)
        shard = lease["shard"]
        stolen = queue.acquire("thief")
        sealed = _commit_shard(queue, shard, worker="holder",
                               token=lease["token"])
        assert sealed["state"] == "committed"
        late = _subset_commit(queue, shard, [stolen["sub"]], worker="thief",
                              token=stolen["token"])
        assert late["duplicate"] is True
        assert late["duplicate_wearers"] == [stolen["sub"]]

    def test_sub_commit_racing_full_commit_divergent_is_refused(
        self, tmp_path
    ):
        queue, lease = self._split_queue(tmp_path)
        shard = lease["shard"]
        stolen = queue.acquire("thief")
        _commit_shard(queue, shard, worker="holder", tag="a",
                      token=lease["token"])
        with pytest.raises(QueueError) as exc:
            _subset_commit(queue, shard, [stolen["sub"]], worker="thief",
                           tag="b", token=stolen["token"])
        assert exc.value.status == 409

    def test_split_state_survives_coordinator_restart(self, tmp_path):
        clock = FakeClock()
        spec = _spec()
        queue = CampaignQueue(
            spec, tmp_path / "campaign", shards=1, lease_ttl=30.0,
            clock=clock,
        )
        lease = queue.acquire("holder")
        shard = lease["shard"]
        first = queue.acquire("thief")
        second = queue.acquire("thief2")
        _subset_commit(queue, shard, [first["sub"]], worker="thief",
                       token=first["token"])
        queue.close()

        reopened = CampaignQueue(
            spec, tmp_path / "campaign", shards=1, lease_ttl=30.0,
            clock=clock,
        )
        # the split, the committed steal, and both live leases came back
        assert reopened.counts()["split"] == 1
        assert set(reopened.stolen_wearers(shard)) == {
            first["sub"], second["sub"],
        }
        assert reopened.heartbeat(second["token"])["wearer"] == second["sub"]
        remainder = [w for w in reopened.wearers_of[shard]
                     if w != first["sub"]]
        sealed = _subset_commit(reopened, shard, remainder, worker="holder",
                                token=lease["token"])
        assert sealed["state"] == "committed"
        assert reopened.done
        reopened.close()


class TestCommitValidation:
    def test_corrupt_payload_crc_is_refused(self, tmp_path):
        queue = _queue(tmp_path)
        shard = _nonempty_shards(queue)[0]
        summaries = _shard_summaries(queue, shard)
        with pytest.raises(QueueError) as exc:
            queue.commit(shard, summaries, "deadbeef", worker="w1")
        assert exc.value.status == 400
        assert queue.counts()["committed"] == queue.shards - len(
            _nonempty_shards(queue)
        )

    def test_wrong_wearer_set_is_refused(self, tmp_path):
        queue = _queue(tmp_path)
        shard = _nonempty_shards(queue)[0]
        summaries = _shard_summaries(queue, shard)
        summaries["intruder"] = _summary("intruder")
        with pytest.raises(QueueError) as exc:
            queue.commit(
                shard, summaries, shard_payload_crc(summaries), worker="w1"
            )
        assert exc.value.status == 400

    def test_unknown_shard_404s(self, tmp_path):
        queue = _queue(tmp_path)
        with pytest.raises(QueueError) as exc:
            queue.commit(99, {}, shard_payload_crc({}), worker="w1")
        assert exc.value.status == 404

    def test_divergent_double_commit_is_an_integrity_error(self, tmp_path):
        queue = _queue(tmp_path)
        shard = _nonempty_shards(queue)[0]
        _commit_shard(queue, shard, tag="a")
        with pytest.raises(QueueError) as exc:
            _commit_shard(queue, shard, tag="b")  # different bytes!
        assert exc.value.status == 409
        # the original bytes survived the attempt
        wearer = queue.wearers_of[shard][0]
        path = (
            shard_directory(queue.directory, shard) / wearer
            / SUMMARY_FILENAME
        )
        assert json.loads(path.read_text())["tag"] == "a"

    def test_commit_writes_summaries_to_disk(self, tmp_path):
        queue = _queue(tmp_path)
        shard = _nonempty_shards(queue)[0]
        _commit_shard(queue, shard)
        for wearer in queue.wearers_of[shard]:
            path = (
                shard_directory(queue.directory, shard) / wearer
                / SUMMARY_FILENAME
            )
            assert json.loads(path.read_text())["wearer_id"] == wearer


class TestDurability:
    def test_replay_restores_commits_and_inflight_leases(self, tmp_path):
        clock = FakeClock()
        spec = _spec()
        queue = _queue(tmp_path, spec=spec, ttl=10.0, clock=clock)
        shards = _nonempty_shards(queue)
        lease = queue.acquire("w1")
        committed = [s for s in shards if s != lease["shard"]][0]
        _commit_shard(queue, committed, worker="w2")
        queue.close()

        reopened = _queue(tmp_path, spec=spec, ttl=10.0, clock=clock)
        counts = reopened.counts()
        assert counts["leased"] == 1
        assert counts["committed"] >= 1
        # the restored lease keeps its original token *and* expiry
        assert reopened.heartbeat(lease["token"])["shard"] == lease["shard"]
        clock.advance(10.1)
        assert reopened.acquire("w3")["shard"] == lease["shard"]
        reopened.close()

    def test_restored_lease_expires_on_original_wall_clock(self, tmp_path):
        clock = FakeClock()
        spec = _spec()
        queue = _queue(tmp_path, spec=spec, ttl=10.0, clock=clock)
        lease = queue.acquire("w1")
        queue.close()
        clock.advance(10.1)  # TTL lapsed while the coordinator was down
        reopened = _queue(tmp_path, spec=spec, ttl=10.0, clock=clock)
        with pytest.raises(QueueError):
            reopened.heartbeat(lease["token"])
        assert reopened.acquire("w2")["shard"] == lease["shard"]
        reopened.close()

    def test_torn_log_tail_is_truncated_not_fatal(self, tmp_path):
        spec = _spec()
        queue = _queue(tmp_path, spec=spec)
        shard = _nonempty_shards(queue)[0]
        _commit_shard(queue, shard)
        queue.close()
        log = tmp_path / "campaign" / QUEUE_LOG_FILENAME
        with open(log, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "lease", "shard":')  # torn mid-write
        reopened = _queue(tmp_path, spec=spec)
        assert reopened._shards[shard]["state"] == "committed"
        reopened.close()

    def test_foreign_campaign_directory_is_refused(self, tmp_path):
        queue = _queue(tmp_path, spec=_spec(name="first"))
        queue.close()
        with pytest.raises(JournalError):
            _queue(tmp_path, spec=_spec(name="second"))

    def test_empty_shards_are_committed_by_the_coordinator(self, tmp_path):
        # More shards than wearers guarantees holes in the assignment.
        queue = _queue(tmp_path, spec=_spec(size=3), shards=8)
        empties = [s for s, w in queue.wearers_of.items() if not w]
        assert empties  # the premise of this test
        counts = queue.counts()
        assert counts["committed"] == len(empties)
        assert queue.worker_commits().get("coordinator") == len(empties)
        queue.close()


class TestFinalize:
    def test_finalize_refuses_a_partial_campaign(self, tmp_path):
        queue = _queue(tmp_path)
        with pytest.raises(QueueError) as exc:
            queue.finalize()
        assert exc.value.status == 409

    def test_finalize_is_deterministic_across_queue_instances(
        self, tmp_path
    ):
        # Two independent queues fed the same summary bytes must write
        # byte-identical aggregate/atlas artifacts — the queue-local half
        # of the fleet-vs-single-host identity contract.
        spec = _spec()
        blobs = {}
        for leg in ("a", "b"):
            queue = _queue(tmp_path / leg, spec=spec)
            for shard in _nonempty_shards(queue):
                _commit_shard(queue, shard, worker=f"w-{leg}")
            assert queue.done
            queue.finalize()
            blobs[leg] = tuple(
                (queue.directory / name).read_bytes()
                for name in ("aggregate.json", "atlas.json")
            )
            queue.close()
        assert blobs["a"] == blobs["b"]

    def test_shard_states_expose_the_operator_view(self, tmp_path):
        clock = FakeClock()
        queue = _queue(tmp_path, ttl=10.0, clock=clock)
        lease = queue.acquire("w1")
        states = {s["index"]: s for s in queue.shard_states()}
        assert len(states) == queue.shards
        leased = states[lease["shard"]]
        assert leased["state"] == "leased"
        assert leased["worker"] == "w1"
        assert 0.0 < leased["expires_in"] <= 10.0
        pending = [
            s for s in states.values()
            if s["state"] == "pending" and s["wearers"]
        ]
        assert pending
        queue.close()


class TestFencingTokens:
    """PR 10 epoch-stamped lease tokens: minting, parsing, the cross-
    epoch honour rules, and constant-time comparison semantics."""

    def test_mint_and_parse_roundtrip(self):
        from repro.campaign.queue import mint_token, token_epoch

        token = mint_token(3)
        assert token.startswith("e3.")
        assert token_epoch(token) == 3
        assert token_epoch(mint_token(12)) == 12
        # two mints never collide
        assert mint_token(3) != mint_token(3)

    def test_legacy_and_garbage_tokens_parse_to_none(self):
        from repro.campaign.queue import token_epoch

        for legacy in ("deadbeefcafe", "", "e.", "eX.abc", "e-1x.y"):
            assert token_epoch(legacy) is None

    def test_tokens_equal_semantics(self):
        from repro.campaign.queue import mint_token, tokens_equal

        token = mint_token(1)
        assert tokens_equal(token, token)
        assert not tokens_equal(token, mint_token(1))
        assert tokens_equal(None, None)
        assert not tokens_equal(token, None)
        assert not tokens_equal(None, token)

    def test_minted_leases_carry_the_queue_epoch(self, tmp_path):
        from repro.campaign.queue import token_epoch

        queue = CampaignQueue(
            _spec(), tmp_path / "campaign", shards=3, clock=FakeClock(),
            epoch=2,
        )
        lease = queue.acquire("w")
        assert token_epoch(lease["token"]) == 2
        queue.close()

    def test_earlier_epoch_tokens_survive_a_handoff(self, tmp_path):
        # the liveness half of fencing: a lease granted by epoch-1 is
        # replayed into the epoch-2 queue and stays fully usable — the
        # worker heartbeats and commits mid-shard work without
        # re-simulation
        from repro.campaign.queue import token_epoch

        old = CampaignQueue(
            _spec(), tmp_path / "campaign", shards=3, clock=FakeClock(),
            epoch=1,
        )
        lease = old.acquire("w")
        assert token_epoch(lease["token"]) == 1
        old.close()

        new = CampaignQueue(
            _spec(), tmp_path / "campaign", shards=3, clock=FakeClock(),
            epoch=2,
        )
        beat = new.heartbeat(lease["token"])
        assert beat["shard"] == lease["shard"]
        outcome = _commit_shard(
            new, lease["shard"], token=lease["token"]
        )
        assert (outcome["state"], outcome["duplicate"]) == (
            "committed", False,
        )
        new.close()

    def test_later_epoch_token_means_deposed_queue_410(self, tmp_path):
        from repro.campaign.queue import mint_token

        queue = CampaignQueue(
            _spec(), tmp_path / "campaign", shards=3, clock=FakeClock(),
            epoch=1,
        )
        queue.acquire("w")
        with pytest.raises(QueueError) as err:
            queue.heartbeat(mint_token(2))
        assert err.value.status == 410
        assert "superseded" in err.value.message
        # an unknown token from our *own* epoch is a plain dead lease,
        # not a fencing event
        with pytest.raises(QueueError) as err:
            queue.heartbeat(mint_token(1))
        assert err.value.status == 410
        assert "superseded" not in err.value.message
        queue.close()
