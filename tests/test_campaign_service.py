"""In-process tests for the campaign HTTP service.

The service binds an ephemeral loopback port (``port=0``) so the suite
never collides with a real deployment or a parallel test run, and every
campaign uses the smoke preset with pinned seeds so results — and the
aggregate fingerprints the assertions pin — are deterministic.

The HTTP client here is hand-rolled on asyncio streams: the tests speak
the same stdlib-only wire format the service implements, with no test
dependencies beyond pytest.
"""

import asyncio
import json

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.service import SERVICE_LOG_FILENAME, CampaignService
from repro.campaign.spec import make_population
from repro.campaign.wearer_cache import summary_crc, wearer_fingerprint
from repro.core.journal import write_campaign_manifest


async def _request(port, method, path, payload=None):
    """One HTTP exchange against loopback; returns (status, json_body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(head_blob.split()[1])
    return status, json.loads(body_blob.decode("utf-8"))


async def _poll_until(port, campaign_id, states, attempts=600):
    for _ in range(attempts):
        status, payload = await _request(
            port, "GET", f"/campaigns/{campaign_id}"
        )
        assert status == 200
        if payload["state"] in states:
            return payload
        await asyncio.sleep(0.05)
    raise AssertionError(f"campaign never reached {states}: {payload}")


def _spec(size=6, base_seed=40, name="svc"):
    return make_population(
        size, preset="smoke", base_seed=base_seed, pdr_bounds=(90, 95),
        name=name,
    )


class TestServiceApi:
    def test_submit_poll_result_artifacts(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, jobs=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, health = await _request(port, "GET", "/healthz")
                assert (status, health["ok"]) == (200, True)

                spec = _spec()
                status, sub = await _request(
                    port, "POST", "/campaigns", spec.to_dict()
                )
                assert status == 202
                assert sub["id"] == spec.fingerprint()
                assert sub["state"] in ("queued", "running")

                final = await _poll_until(
                    port, sub["id"], ("done", "failed")
                )
                assert final["state"] == "done"
                assert final["wearers_done"] == final["wearers_total"] == 6

                status, result = await _request(
                    port, "GET", f"/campaigns/{sub['id']}/result"
                )
                assert status == 200
                assert result["kind"] == "campaign_aggregate"
                assert result["wearers"] == 6
                on_disk = json.loads(
                    (tmp_path / sub["id"] / "aggregate.json").read_text()
                )
                assert result == on_disk

                for name, kind in (
                    ("atlas.json", "campaign_atlas"),
                    ("telemetry.json", "campaign_telemetry"),
                    ("campaign.json", None),
                ):
                    status, artifact = await _request(
                        port, "GET",
                        f"/campaigns/{sub['id']}/artifacts/{name}",
                    )
                    assert status == 200
                    if kind:
                        assert artifact["kind"] == kind

                # resubmission is idempotent: same id, already done, 200
                status, again = await _request(
                    port, "POST", "/campaigns", spec.to_dict()
                )
                assert (status, again["id"], again["state"]) == (
                    200, sub["id"], "done"
                )

                status, listing = await _request(port, "GET", "/campaigns")
                assert status == 200
                assert [c["id"] for c in listing["campaigns"]] == [sub["id"]]
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())

    def test_spec_wrapped_under_spec_key_also_accepted(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, jobs=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                spec = _spec(size=1, base_seed=77, name="wrapped")
                status, sub = await _request(
                    port, "POST", "/campaigns", {"spec": spec.to_dict()}
                )
                assert status == 202
                assert sub["id"] == spec.fingerprint()
                await _poll_until(port, sub["id"], ("done",))
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())

    def test_error_paths(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, jobs=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, err = await _request(port, "GET", "/campaigns/feed")
                assert status == 404 and "unknown campaign" in err["error"]

                status, err = await _request(port, "GET", "/nope")
                assert status == 404

                status, err = await _request(port, "DELETE", "/campaigns")
                assert status == 405

                status, err = await _request(port, "POST", "/healthz")
                assert status == 405

                # invalid JSON and invalid specs are 400, not crashes
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\nConnection: close\r\n\r\nnot-json!"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert b"400" in raw.split(b"\r\n", 1)[0]

                status, err = await _request(
                    port, "POST", "/campaigns", {"wearers": []}
                )
                assert status == 400 and "bad campaign spec" in err["error"]

                # a manifest without an aggregate (created behind the
                # service's back) reads as interrupted; result is 409
                spec = _spec(size=1, base_seed=9, name="limbo")
                cid = spec.fingerprint()
                limbo = tmp_path / cid
                limbo.mkdir()
                write_campaign_manifest(limbo, spec.to_dict(), cid, 1)
                status, st = await _request(port, "GET", f"/campaigns/{cid}")
                assert (status, st["state"]) == (200, "interrupted")
                status, err = await _request(
                    port, "GET", f"/campaigns/{cid}/result"
                )
                assert status == 409 and "no aggregate" in err["error"]
                status, err = await _request(
                    port, "GET", f"/campaigns/{cid}/artifacts/journal.jsonl"
                )
                assert status == 404  # journals are replay state, not artifacts
                assert "unknown artifact" in err["error"]
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())


class TestServiceRecovery:
    def test_restart_resumes_interrupted_campaign_byte_identical(
        self, tmp_path
    ):
        """The durability contract: a killed service, restarted over the
        same root, finishes every in-flight campaign through journal
        replay to byte-identical artifacts."""
        spec = _spec(size=3, base_seed=21, name="lazarus")
        cid = spec.fingerprint()
        golden_dir = tmp_path / "golden" / cid
        report = run_campaign(spec, golden_dir, jobs=1)
        golden = report.aggregate_path.read_bytes()
        golden_atlas = report.atlas_path.read_bytes()

        # Stage the "killed mid-campaign" root: copy the completed run,
        # then tear one wearer back to a truncated journal and drop the
        # fleet artifacts — exactly what SIGKILL mid-shard leaves behind.
        import shutil

        root = tmp_path / "root"
        victim_dir = root / cid
        shutil.copytree(golden_dir, victim_dir)
        (victim_dir / "aggregate.json").unlink()
        (victim_dir / "atlas.json").unlink()
        (victim_dir / "telemetry.json").unlink()
        journals = sorted(victim_dir.glob("shards/*/*/journal.jsonl"))
        assert journals
        lines = journals[0].read_text().splitlines()
        journals[0].write_text("\n".join(lines[:3]) + "\n" + lines[3][:20])
        (journals[0].parent / "summary.json").unlink()

        async def scenario():
            service = CampaignService(root, jobs=1)
            _, port = await service.start("127.0.0.1", 0)  # recover() runs
            try:
                final = await _poll_until(port, cid, ("done", "failed"))
                assert final["state"] == "done"
                status, result = await _request(
                    port, "GET", f"/campaigns/{cid}/result"
                )
                assert status == 200
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())
        assert (victim_dir / "aggregate.json").read_bytes() == golden
        assert (victim_dir / "atlas.json").read_bytes() == golden_atlas

    def test_recover_marks_unreadable_manifest_failed(self, tmp_path):
        bad = tmp_path / "feedfacecafe0000"
        bad.mkdir()
        (bad / "campaign.json").write_text("{ truncated garbage")

        async def scenario():
            service = CampaignService(tmp_path, jobs=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, payload = await _request(
                    port, "GET", "/campaigns/feedfacecafe0000"
                )
                assert status == 200
                assert payload["state"] == "failed"
                assert "unrecoverable" in payload["error"]
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())


async def _submit_fleet(port, spec):
    status, sub = await _request(
        port, "POST", "/campaigns",
        {"spec": spec.to_dict(), "execution": "fleet"},
    )
    assert status == 202
    return sub["id"]


def _cacheable_summary(tag="a"):
    return {
        "status": "infeasible",
        "best": None,
        "oracle_stats": {"simulations_run": 1, "cache_hits": 0},
        "tag": tag,
    }


class TestFabricEndpoints:
    """The PR 9 surface: wearer-cache GET/PUT, batched /fabric/sync,
    round-robin lease fairness, and keep-alive connections."""

    def test_wearer_cache_roundtrip_and_integrity(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, err = await _request(
                    port, "GET", "/cache/wearers/ab12"
                )
                assert status == 404

                summary = _cacheable_summary()
                good = {"summary": summary, "crc": summary_crc(summary)}
                status, put = await _request(
                    port, "PUT", "/cache/wearers/ab12", good
                )
                assert (status, put["stored"]) == (200, True)

                status, got = await _request(
                    port, "GET", "/cache/wearers/ab12"
                )
                assert status == 200
                assert got["crc"] == summary_crc(summary)
                assert got["summary"]["status"] == "infeasible"

                # idempotent repeat: stored=False, not an error
                status, put = await _request(
                    port, "PUT", "/cache/wearers/ab12", good
                )
                assert (status, put["stored"]) == (200, False)

                # corrupted upload: crc does not match the bytes
                status, err = await _request(
                    port, "PUT", "/cache/wearers/ab12",
                    {"summary": summary, "crc": "deadbeef"},
                )
                assert status == 400

                # divergence: same fingerprint, different bytes → 409
                other = _cacheable_summary("b")
                status, err = await _request(
                    port, "PUT", "/cache/wearers/ab12",
                    {"summary": other, "crc": summary_crc(other)},
                )
                assert status == 409

                status, err = await _request(
                    port, "GET", "/cache/wearers/NOT-HEX"
                )
                assert status == 400
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_sync_batches_heartbeats_with_per_token_status(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                spec = _spec(size=3, base_seed=51, name="sync")
                cid = await _submit_fleet(port, spec)

                # one round-trip: no heartbeats yet, lease acquired
                status, sync = await _request(
                    port, "POST", "/fabric/sync",
                    {"worker": "w1", "heartbeats": []},
                )
                assert status == 200
                assert sync["campaign"] == cid
                lease = sync["lease"]
                assert lease is not None and lease["token"]

                # batched: a live token and a bogus one in one request —
                # each entry carries its own status, one dead lease must
                # not poison the rest of the tick
                status, sync = await _request(
                    port, "POST", "/fabric/sync",
                    {
                        "worker": "w1",
                        "acquire": False,
                        "heartbeats": [
                            {"campaign": cid, "token": lease["token"]},
                            {"campaign": cid, "token": "bogus"},
                            {"campaign": "feedfacecafe0000", "token": "x"},
                        ],
                    },
                )
                assert status == 200
                assert sync["lease"] is None
                by_token = {h["token"]: h for h in sync["heartbeats"]}
                assert by_token[lease["token"]]["status"] == 200
                assert by_token[lease["token"]]["shard"] == lease["shard"]
                assert by_token["bogus"]["status"] == 410
                assert by_token["x"]["status"] == 410
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_sync_grants_round_robin_across_campaigns(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                ids = set()
                for name in ("rr-one", "rr-two"):
                    spec = _spec(size=2, base_seed=52, name=name)
                    ids.add(await _submit_fleet(port, spec))
                granted = []
                for _ in range(2):
                    status, sync = await _request(
                        port, "POST", "/fabric/sync", {"worker": "w1"}
                    )
                    assert status == 200
                    granted.append(sync["campaign"])
                # fairness: consecutive grants come from *different*
                # campaigns — the first submission cannot starve the
                # second
                assert set(granted) == ids
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_sync_lease_carries_cached_prefetch(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                spec = _spec(size=1, base_seed=53, name="prefetch")
                wearer = spec.wearers[0]
                summary = _cacheable_summary()
                service.wearer_cache.put(
                    wearer_fingerprint(spec.preset, wearer), summary
                )
                await _submit_fleet(port, spec)
                status, sync = await _request(
                    port, "POST", "/fabric/sync", {"worker": "w1"}
                )
                assert status == 200
                cached = sync["lease"]["cached"]
                assert set(cached) == {wearer.wearer_id}
                assert cached[wearer.wearer_id]["tag"] == "a"
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_keep_alive_serves_many_requests_per_connection(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def exchange(extra=""):
                    writer.write(
                        (
                            f"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                            f"{extra}\r\n"
                        ).encode()
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    body = await reader.readexactly(length)
                    return head, json.loads(body)

                # three requests ride one TCP connection
                for _ in range(3):
                    head, payload = await exchange()
                    assert payload["ok"] is True
                    assert b"Connection: keep-alive" in head

                # Connection: close is honoured — response says close
                # and the server hangs up
                head, payload = await exchange("Connection: close\r\n")
                assert b"Connection: close" in head
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_failed_state_survives_restart_via_service_journal(
        self, tmp_path
    ):
        """Satellite (a): campaign outcomes are journaled.  A campaign
        that failed stays failed across a coordinator restart — even if
        whatever broke its manifest has since been repaired — because a
        restart is not a retry; only explicit resubmission is."""
        cid = "feedfacecafe0000"
        bad = tmp_path / cid
        bad.mkdir()
        (bad / "campaign.json").write_text("{ truncated garbage")

        async def first_life():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                _, payload = await _request(port, "GET", f"/campaigns/{cid}")
                assert payload["state"] == "failed"
                return payload["error"]
            finally:
                await service.stop()

        error = asyncio.run(first_life())
        assert (tmp_path / SERVICE_LOG_FILENAME).exists()

        # repair the manifest behind the service's back: without the
        # journal the restart would happily relaunch this campaign
        spec = _spec(size=1, base_seed=54, name="repaired")
        write_campaign_manifest(bad, spec.to_dict(), cid, 1)

        async def second_life():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                _, payload = await _request(port, "GET", f"/campaigns/{cid}")
                assert payload["state"] == "failed"
                assert payload["error"] == error
            finally:
                await service.stop()
                await service.join()

        asyncio.run(second_life())


class TestRequestHardening:
    """The `_read_request` guard rails: slow clients and oversized bodies
    must get an error status and the socket back, not pin a handler."""

    async def _raw_exchange(self, port, blob, settle=0.0):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(blob)
            await writer.drain()
            if settle:
                await asyncio.sleep(settle)
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return int(raw.split()[1]) if raw else None

    def test_silent_client_gets_408(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, read_timeout=0.3)
            _, port = await service.start("127.0.0.1", 0)
            try:
                # half a request line, then silence past the deadline
                status = await self._raw_exchange(
                    port, b"GET /healthz HTT", settle=0.0
                )
                assert status == 408
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_stalled_body_gets_408(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, read_timeout=0.3)
            _, port = await service.start("127.0.0.1", 0)
            try:
                head = (
                    b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 100\r\n\r\n"
                )
                status = await self._raw_exchange(
                    port, head + b"only-part-of-the-body"
                )
                assert status == 408
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_oversized_body_gets_413_before_buffering(self, tmp_path):
        from repro.campaign.service import MAX_BODY_BYTES

        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                head = (
                    b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: %d\r\n\r\n"
                    % (MAX_BODY_BYTES + 1)
                )
                # the declared size alone disqualifies the request: the
                # 413 must arrive without a single body byte being sent
                status = await self._raw_exchange(port, head)
                assert status == 413
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_garbage_header_line_gets_400(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)
            _, port = await service.start("127.0.0.1", 0)
            try:
                # one header line past the StreamReader's 64 KiB limit,
                # but small enough to land in the socket buffers before
                # the server answers (no write/reset race)
                blob = (
                    b"GET /healthz HTTP/1.1\r\n"
                    + b"X-Junk: " + b"a" * (80 * 1024) + b"\r\n\r\n"
                )
                status = await self._raw_exchange(port, blob)
                assert status == 400
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_status_alias_matches_bare_campaign_route(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, jobs=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                spec = _spec(size=2, base_seed=77, name="alias")
                status, sub = await _request(
                    port, "POST", "/campaigns", spec.to_dict()
                )
                assert status in (200, 202)
                cid = sub["id"]
                await _poll_until(port, cid, {"done"})
                _, bare = await _request(port, "GET", f"/campaigns/{cid}")
                _, alias = await _request(
                    port, "GET", f"/campaigns/{cid}/status"
                )
                assert alias == bare
            finally:
                await service.stop()
                await service.join()

        asyncio.run(scenario())


async def _exchange_with_headers(port, method, path, payload=None):
    """Like _request, but also returns the response headers (lowercased)
    so tests can pin wire-level fields like Retry-After."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = head_blob.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob.decode())


class TestBackpressure:
    """PR 10 sync backpressure: global in-flight admission and the
    per-connection sync rate floor, both answered with 429 +
    Retry-After so workers can back off instead of piling on."""

    def test_saturated_coordinator_sheds_load_with_429(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, max_inflight=1)
            _, port = await service.start("127.0.0.1", 0)
            try:
                # connection 1 claims the only slot by sending a request
                # line and then stalling mid-headers
                reader1, writer1 = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer1.write(b"POST /fabric/sync HTTP/1.1\r\n")
                await writer1.drain()
                await asyncio.sleep(0.2)

                status, headers, err = await _exchange_with_headers(
                    port, "GET", "/campaigns"
                )
                assert status == 429
                assert float(headers["retry-after"]) > 0
                assert err["retry_after"] == float(headers["retry-after"])

                # health stays observable even under saturation — probes
                # and promotion are exempt from admission
                status, _, health = await _exchange_with_headers(
                    port, "GET", "/healthz"
                )
                assert (status, health["ok"]) == (200, True)

                # slot released when connection 1 goes away → accepted
                writer1.close()
                try:
                    await writer1.wait_closed()
                except (ConnectionError, OSError):
                    pass
                await asyncio.sleep(0.2)
                status, _, _ = await _exchange_with_headers(
                    port, "GET", "/campaigns"
                )
                assert status == 200
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_sync_spacing_is_per_connection(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, min_sync_interval=30.0)
            _, port = await service.start("127.0.0.1", 0)
            try:
                # one keep-alive connection syncing twice back-to-back:
                # the second tick violates the spacing floor
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                body = json.dumps(
                    {"worker": "w1", "heartbeats": []}
                ).encode()
                head = (
                    "POST /fabric/sync HTTP/1.1\r\nHost: t\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()

                async def one(expect):
                    writer.write(head + body)
                    await writer.drain()
                    status_line = await reader.readline()
                    assert b" %d " % expect in status_line
                    length = None
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b""):
                            break
                        name, _, value = line.decode().partition(":")
                        if name.strip().lower() == "content-length":
                            length = int(value)
                    await reader.readexactly(length)

                try:
                    await one(200)
                    await one(429)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass

                # ...but a *fresh* connection is not punished for the
                # old one's chattiness
                status, _, sync = await _exchange_with_headers(
                    port, "POST", "/fabric/sync",
                    {"worker": "w2", "heartbeats": []},
                )
                assert status == 200
            finally:
                await service.stop()

        asyncio.run(scenario())
