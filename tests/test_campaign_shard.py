"""Property tests for the deterministic campaign sharder.

The contract under test: shard assignment is a *pure function* of
``(spec fingerprint, wearer id, shard count)`` — independent of process,
platform hash seed, worker count, or spec iteration order — and
repartitioning a campaign under any shard count preserves the population
and, end-to-end, the aggregate bytes.
"""

import json
import subprocess
import sys

import pytest

from repro.campaign.shard import shard_assignment, shard_of, shard_plan
from repro.campaign.spec import CampaignSpec, WearerSpec, make_population

SPECS = [
    make_population(1, preset="smoke", name="solo"),
    make_population(7, preset="smoke", base_seed=3, pdr_bounds=(90, 95)),
    make_population(24, preset="ci", base_seed=100,
                    pdr_bounds=(85, 90, 95), name="big"),
    CampaignSpec(
        name="mixed",
        preset="smoke",
        wearers=(
            WearerSpec("alice", 1, 0.90),
            WearerSpec("bob", 2, 0.95, cohort="strict"),
            WearerSpec("carol", 3, 0.85, mode="robust", quantile=0.25),
        ),
    ),
]


class TestShardOf:
    def test_deterministic_across_calls(self):
        for fp in ("aaaa", "bbbb", "0123456789abcdef"):
            for wid in ("w000", "w001", "alice"):
                values = {shard_of(fp, wid, 5) for _ in range(10)}
                assert len(values) == 1

    def test_range(self):
        for n in (1, 2, 3, 7, 16):
            for i in range(50):
                assert 0 <= shard_of("fp", f"w{i:03d}", n) < n

    def test_known_vector(self):
        """Pin the hash-to-shard mapping: a silent change here would strand
        every existing campaign directory's journals."""
        assert shard_of("deadbeefcafef00d", "w000", 4) == int.from_bytes(
            __import__("hashlib")
            .sha256(b"deadbeefcafef00d:w000")
            .digest()[:8],
            "big",
        ) % 4

    def test_depends_on_fingerprint_and_wearer(self):
        # not constant: different inputs spread over shards
        spread = {shard_of("fp", f"w{i:03d}", 8) for i in range(64)}
        assert len(spread) > 1
        assert shard_of("fp-a", "w000", 8192) != shard_of(
            "fp-b", "w000", 8192
        ) or shard_of("fp-a", "w001", 8192) != shard_of("fp-b", "w001", 8192)

    def test_stable_across_interpreter_hash_seeds(self):
        """PYTHONHASHSEED must not move wearers between shards (resume
        happens in a different process than the original run)."""
        code = (
            "from repro.campaign.shard import shard_of;"
            "print([shard_of('feedface', f'w{i:03d}', 7) for i in range(20)])"
        )
        outs = set()
        for seed in ("0", "1", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                check=True,
            )
            outs.add(proc.stdout.strip())
        assert len(outs) == 1


class TestShardAssignment:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 5, 8))
    def test_every_shard_index_present(self, spec, num_shards):
        assignment = shard_assignment(spec, num_shards)
        assert sorted(assignment) == list(range(num_shards))

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 5, 8))
    def test_union_is_the_population(self, spec, num_shards):
        assignment = shard_assignment(spec, num_shards)
        flat = [w for shard in assignment.values() for w in shard]
        assert sorted(w.wearer_id for w in flat) == sorted(
            w.wearer_id for w in spec.wearers
        )
        assert len(flat) == len(spec.wearers)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_assignment_matches_shard_of(self, spec):
        fp = spec.fingerprint()
        assignment = shard_assignment(spec, 4)
        for index, wearers in assignment.items():
            for w in wearers:
                assert shard_of(fp, w.wearer_id, 4) == index

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_spec_order_preserved_within_shard(self, spec):
        order = {w.wearer_id: i for i, w in enumerate(spec.wearers)}
        for wearers in shard_assignment(spec, 3).values():
            ranks = [order[w.wearer_id] for w in wearers]
            assert ranks == sorted(ranks)

    def test_plan_round_trips_through_json(self):
        spec = SPECS[1]
        plan = shard_plan(spec, 3)
        assert json.loads(json.dumps(plan)) == plan
        assert [entry["index"] for entry in plan] == [0, 1, 2]
        assert sum(len(entry["wearers"]) for entry in plan) == len(
            spec.wearers
        )


class TestRepartitionEndToEnd:
    def test_aggregate_invariant_under_shard_count(self, tmp_path):
        """Running the same campaign under different shard/worker layouts
        must yield byte-identical aggregate and atlas artifacts."""
        from repro.campaign.runner import run_campaign

        spec = make_population(
            3, preset="smoke", base_seed=2, pdr_bounds=(90,), name="repart"
        )
        artifacts = []
        for shards in (1, 3):
            report = run_campaign(
                spec, tmp_path / f"s{shards}", shards=shards, jobs=1
            )
            artifacts.append(
                (
                    report.aggregate_path.read_bytes(),
                    report.atlas_path.read_bytes(),
                )
            )
        assert artifacts[0] == artifacts[1]
