"""Tests for the body model, path loss, fading, and the composite channel."""

import numpy as np
import pytest

from repro.channel.body import BACK, CHEST, LEFT_ANKLE, LEFT_HIP, STANDARD_BODY, BodyModel
from repro.channel.fading import (
    FadingParameters,
    NodeShadowing,
    OrnsteinUhlenbeckFading,
)
from repro.channel.link import Channel
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters
from repro.des.rng import RngStreams


class TestBodyModel:
    def test_ten_standard_locations(self):
        assert STANDARD_BODY.num_locations == 10
        assert STANDARD_BODY.location(0).name == "chest"
        assert STANDARD_BODY.by_name("back").index == 9

    def test_duplicate_indices_rejected(self):
        loc = STANDARD_BODY.location(0)
        with pytest.raises(ValueError):
            BodyModel([loc, loc])

    def test_distance_symmetry_and_positivity(self):
        for i in range(10):
            for j in range(i + 1, 10):
                d = STANDARD_BODY.distance(i, j)
                assert d > 0
                assert d == STANDARD_BODY.distance(j, i)

    def test_chest_to_back_is_occluded(self):
        assert STANDARD_BODY.is_occluded(CHEST, BACK)

    def test_chest_to_hip_is_los(self):
        assert not STANDARD_BODY.is_occluded(CHEST, LEFT_HIP)

    def test_link_classes_cover_all_pairs(self):
        classes = STANDARD_BODY.link_classes()
        assert len(classes) == 45  # C(10, 2)
        assert set(classes.values()) <= {"los", "nlos"}

    def test_unknown_location_raises(self):
        with pytest.raises(KeyError):
            STANDARD_BODY.location(99)
        with pytest.raises(KeyError):
            STANDARD_BODY.by_name("elbow")


class TestMeanPathLoss:
    def setup_method(self):
        self.model = MeanPathLossModel(STANDARD_BODY)

    def test_monotone_with_distance_for_los_links(self):
        # chest-hip is shorter than chest-ankle; both LOS.
        short = self.model.mean_path_loss(CHEST, LEFT_HIP)
        long = self.model.mean_path_loss(CHEST, LEFT_ANKLE)
        assert short < long

    def test_symmetric(self):
        assert self.model.mean_path_loss(2, 7) == self.model.mean_path_loss(7, 2)

    def test_nlos_penalty_applied(self):
        base = PathLossParameters()
        no_penalty = MeanPathLossModel(
            STANDARD_BODY,
            PathLossParameters(nlos_penalty_db=0.0),
        )
        assert self.model.mean_path_loss(CHEST, BACK) == pytest.approx(
            no_penalty.mean_path_loss(CHEST, BACK) + base.nlos_penalty_db
        )

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            self.model.mean_path_loss(3, 3)

    def test_values_in_published_wban_range(self):
        # Published 2.4 GHz on-body campaigns report roughly 35-90 dB for
        # direct links; our deepest around-body limb links (distance law +
        # NLOS penalty) may exceed that, but must stay physically sane.
        matrix = self.model.matrix()
        finite = matrix[np.isfinite(matrix)]
        assert finite.min() > 30.0
        assert finite.max() < 115.0

    def test_measured_override(self):
        model = MeanPathLossModel(STANDARD_BODY, measured={(1, 0): 55.5})
        assert model.mean_path_loss(0, 1) == 55.5
        assert model.mean_path_loss(1, 0) == 55.5

    def test_matrix_diagonal_nan(self):
        matrix = self.model.matrix()
        assert np.isnan(np.diag(matrix)).all()

    def test_worst_link(self):
        (i, j), value = self.model.worst_link([0, 1, 3])
        assert value == self.model.mean_path_loss(CHEST, LEFT_ANKLE)
        assert {i, j} == {CHEST, LEFT_ANKLE}

    def test_worst_link_needs_two(self):
        with pytest.raises(ValueError):
            self.model.worst_link([0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PathLossParameters(ref_distance_m=0.0)
        with pytest.raises(ValueError):
            PathLossParameters(exponent=-1.0)


class TestOuFading:
    def make(self, **kwargs):
        params = FadingParameters(
            shadow_fraction=0.0, **kwargs
        )  # isolate the OU component
        return OrnsteinUhlenbeckFading(params, RngStreams(seed=5))

    def test_deterministic_per_seed(self):
        a = self.make().sample(0, 1, 1.0)
        b = OrnsteinUhlenbeckFading(
            FadingParameters(shadow_fraction=0.0), RngStreams(seed=5)
        ).sample(0, 1, 1.0)
        assert a == b

    def test_reciprocal_links_share_state(self):
        fading = self.make()
        v1 = fading.sample(2, 5, 1.0)
        v2 = fading.sample(5, 2, 1.0)
        assert v1 == v2

    def test_same_time_same_value(self):
        fading = self.make()
        v1 = fading.sample(0, 1, 3.0)
        v2 = fading.sample(0, 1, 3.0)
        assert v1 == v2

    def test_backwards_time_rejected(self):
        fading = self.make()
        fading.sample(0, 1, 5.0)
        with pytest.raises(ValueError):
            fading.sample(0, 1, 4.0)

    def test_clipped(self):
        fading = self.make(sigma_db=6.0, clip_db=10.0)
        values = [fading.sample(0, 1, t * 10.0) for t in range(500)]
        assert all(-10.0 <= v <= 10.0 for v in values)

    def test_short_dt_highly_correlated(self):
        fading = self.make(sigma_db=6.0, coherence_time_s=1.0)
        v0 = fading.sample(0, 1, 0.0)
        v1 = fading.sample(0, 1, 1e-4)
        assert abs(v1 - v0) < 0.5

    def test_long_dt_near_stationary(self):
        # After many coherence times, samples decorrelate: the empirical
        # std over many far-apart samples approaches sigma.
        fading = self.make(sigma_db=6.0, coherence_time_s=0.1)
        values = np.array([fading.sample(0, 1, 5.0 * k) for k in range(400)])
        assert 4.0 < values.std() < 8.0

    def test_zero_sigma_is_silent(self):
        fading = self.make(sigma_db=0.0)
        assert fading.sample(0, 1, 0.0) == 0.0
        assert fading.sample(0, 1, 9.0) == 0.0

    def test_reset_forgets_history(self):
        fading = self.make()
        fading.sample(0, 1, 10.0)
        fading.reset()
        fading.sample(0, 1, 1.0)  # would raise without reset

    def test_peek_does_not_advance(self):
        fading = self.make()
        v = fading.sample(0, 1, 1.0)
        assert fading.peek(0, 1) == v
        assert fading.peek(1, 0) == v
        assert fading.peek(4, 7) == 0.0


class TestNodeShadowing:
    def test_stationary_fraction_approx(self):
        params = FadingParameters(
            shadow_fraction=0.2, shadow_dwell_s=1.0, shadow_depth_db=10.0
        )
        shadow = NodeShadowing(params, RngStreams(seed=3))
        samples = [shadow.is_occluded(0, 0.5 * k) for k in range(4000)]
        fraction = sum(samples) / len(samples)
        assert 0.15 < fraction < 0.25

    def test_dwell_produces_correlation(self):
        params = FadingParameters(
            shadow_fraction=0.3, shadow_dwell_s=5.0, shadow_depth_db=10.0
        )
        shadow = NodeShadowing(params, RngStreams(seed=4))
        samples = [shadow.is_occluded(0, 0.01 * k) for k in range(2000)]
        flips = sum(1 for a, b in zip(samples, samples[1:]) if a != b)
        # 20 s of samples with ~5 s dwells: transitions are rare.
        assert flips < 40

    def test_zero_fraction_never_occluded(self):
        params = FadingParameters(shadow_fraction=0.0)
        shadow = NodeShadowing(params, RngStreams(seed=0))
        assert not any(shadow.is_occluded(0, float(t)) for t in range(50))

    def test_extra_loss_counts_both_endpoints(self):
        params = FadingParameters(
            shadow_fraction=0.99, shadow_dwell_s=10.0, shadow_depth_db=16.0
        )
        shadow = NodeShadowing(params, RngStreams(seed=11))
        # With 99% occlusion probability some sample has both ends shadowed.
        losses = {shadow.extra_loss_db(0, 1, float(t)) for t in range(50)}
        assert 32.0 in losses
        assert losses <= {0.0, 16.0, 32.0}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FadingParameters(shadow_fraction=1.5)
        with pytest.raises(ValueError):
            FadingParameters(shadow_dwell_s=0.0)
        with pytest.raises(ValueError):
            FadingParameters(shadow_depth_db=-1.0)
        with pytest.raises(ValueError):
            FadingParameters(sigma_db=-2.0)
        with pytest.raises(ValueError):
            FadingParameters(coherence_time_s=0.0)
        with pytest.raises(ValueError):
            FadingParameters(clip_db=0.0)


class TestChannel:
    def make_channel(self, **fading_kwargs):
        return Channel(
            RngStreams(seed=1),
            fading_params=FadingParameters(
                shadow_fraction=0.0, sigma_db=0.0, **fading_kwargs
            ),
        )

    def test_path_loss_equals_mean_when_no_fading(self):
        channel = self.make_channel()
        expected = channel.mean_model.mean_path_loss(0, 1)
        assert channel.path_loss(0, 1, 1.0) == pytest.approx(expected)

    def test_received_power(self):
        channel = self.make_channel()
        pl = channel.mean_model.mean_path_loss(0, 1)
        assert channel.received_power_dbm(0.0, 0, 1, 1.0) == pytest.approx(-pl)

    def test_link_closes_matches_budget(self):
        channel = self.make_channel()
        budget = channel.budget(0.0, -97.0, 0, 1)
        assert budget.closes_on_average == channel.link_closes(
            0.0, -97.0, 0, 1, 1.0
        )

    def test_budget_margin(self):
        channel = self.make_channel()
        budget = channel.budget(-10.0, -97.0, CHEST, LEFT_HIP)
        assert budget.margin_db == pytest.approx(
            -10.0 + 97.0 - budget.mean_path_loss_db
        )

    def test_reset_fading_allows_time_restart(self):
        channel = Channel(RngStreams(seed=1))
        channel.path_loss(0, 1, 50.0)
        channel.reset_fading()
        channel.path_loss(0, 1, 0.0)  # would raise without reset

    def test_weak_budget_fails_link(self):
        channel = self.make_channel()
        # -20 dBm TX cannot close the chest-ankle link on average.
        budget = channel.budget(-20.0, -97.0, CHEST, LEFT_ANKLE)
        assert not budget.closes_on_average
