"""Tests for the posture-dynamics channel extension."""

import pytest

from repro.channel.link import Channel
from repro.channel.posture import (
    DAILY_ACTIVITY,
    LYING,
    SITTING,
    STANDING,
    Posture,
    PostureParameters,
    PostureProcess,
)
from repro.des.rng import RngStreams


def make_process(seed=0, **kwargs):
    return PostureProcess(PostureParameters(**kwargs), RngStreams(seed=seed))


class TestParameters:
    def test_defaults_are_daily_activity(self):
        params = PostureParameters()
        assert params.postures == DAILY_ACTIVITY

    def test_stationary_normalized(self):
        params = PostureParameters()
        assert sum(params.stationary()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PostureParameters(postures=())
        with pytest.raises(ValueError):
            PostureParameters(mean_dwell_s=0.0)
        with pytest.raises(ValueError):
            PostureParameters(
                postures=(Posture("x", probability=0.0),)
            )
        with pytest.raises(ValueError):
            Posture("x", probability=-1.0)
        with pytest.raises(ValueError):
            Posture("x", probability=0.5, shadow_multiplier=-1.0)


class TestProcess:
    def test_single_posture_constant(self):
        process = make_process(postures=(STANDING,))
        postures = {process.posture_at(float(t)).name for t in range(100)}
        assert postures == {"standing"}

    def test_same_time_same_posture(self):
        process = make_process()
        a = process.posture_at(10.0)
        b = process.posture_at(10.0)
        assert a is b

    def test_backwards_time_rejected(self):
        process = make_process()
        process.posture_at(100.0)
        with pytest.raises(ValueError):
            process.posture_at(50.0)

    def test_stationary_occupancy_approximately_matched(self):
        process = make_process(seed=3, mean_dwell_s=10.0)
        counts = {}
        for k in range(6000):
            name = process.posture_at(5.0 * k).name
            counts[name] = counts.get(name, 0) + 1
        total = sum(counts.values())
        expected = {p.name: p.probability for p in DAILY_ACTIVITY}
        for name, prob in expected.items():
            assert counts.get(name, 0) / total == pytest.approx(prob, abs=0.05)

    def test_short_dt_rarely_changes_posture(self):
        process = make_process(seed=5, mean_dwell_s=100.0)
        changes = 0
        last = process.posture_at(0.0).name
        for k in range(1, 1000):
            current = process.posture_at(0.01 * k).name
            if current != last:
                changes += 1
            last = current
        # 10 s observed with 100 s dwells: changes should be rare.
        assert changes <= 3

    def test_extra_loss_by_link_class(self):
        process = make_process(postures=(LYING,))
        assert process.extra_loss_db(occluded=False, t=1.0) == pytest.approx(
            LYING.los_offset_db
        )
        assert process.extra_loss_db(occluded=True, t=1.0) == pytest.approx(
            LYING.nlos_offset_db
        )

    def test_shadow_multiplier_query(self):
        process = make_process(postures=(SITTING,))
        assert process.shadow_fraction_multiplier(0.0) == pytest.approx(
            SITTING.shadow_multiplier
        )

    def test_reset(self):
        process = make_process()
        process.posture_at(500.0)
        process.reset()
        process.posture_at(1.0)  # would raise without reset

    def test_deterministic_per_seed(self):
        a = make_process(seed=9)
        b = make_process(seed=9)
        names_a = [a.posture_at(30.0 * k).name for k in range(50)]
        names_b = [b.posture_at(30.0 * k).name for k in range(50)]
        assert names_a == names_b


class TestChannelIntegration:
    def test_posture_off_by_default(self):
        channel = Channel(RngStreams(seed=0))
        assert channel.posture is None

    def test_lying_only_posture_raises_all_losses(self):
        from repro.channel.fading import FadingParameters

        quiet = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)
        base = Channel(RngStreams(seed=0), fading_params=quiet)
        lying = Channel(
            RngStreams(seed=0),
            fading_params=quiet,
            posture_params=PostureParameters(postures=(LYING,)),
        )
        for i, j in [(0, 1), (0, 9), (3, 6)]:
            delta = lying.path_loss(i, j, 1.0) - base.path_loss(i, j, 1.0)
            expected = (
                LYING.nlos_offset_db
                if base.body.is_occluded(i, j)
                else LYING.los_offset_db
            )
            assert delta == pytest.approx(expected)

    def test_posture_lowers_pdr_in_simulation(self):
        """Daily-activity posture modulation can only hurt reliability
        (every offset is a loss)."""
        from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
        from repro.library.radios import CC2650
        from repro.net.app import AppParameters
        from repro.net.network import simulate_configuration

        kwargs = dict(
            placement=(0, 1, 3, 6),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(-10.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            tsim_s=20.0,
            replicates=2,
            seed=4,
        )
        plain = simulate_configuration(**kwargs)
        lying = simulate_configuration(
            posture_params=PostureParameters(postures=(LYING,)), **kwargs
        )
        assert lying.pdr < plain.pdr
