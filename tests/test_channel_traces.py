"""Tests for measured-channel trace utilities and harvesting lifetimes."""

import io
import math

import pytest

from repro.channel.body import STANDARD_BODY
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters
from repro.channel.traces import (
    full_table,
    load_pathloss_csv,
    save_pathloss_csv,
    synthetic_campaign,
    table_disagreement_db,
)
from repro.library.batteries import CR2032


class TestCsvRoundTrip:
    def test_roundtrip_through_stringio(self):
        table = {(0, 1): 60.0, (0, 3): 86.5, (1, 3): 79.25}
        buffer = io.StringIO()
        save_pathloss_csv(table, buffer)
        buffer.seek(0)
        assert load_pathloss_csv(buffer) == table

    def test_roundtrip_through_file(self, tmp_path):
        table = full_table()
        path = tmp_path / "campaign.csv"
        save_pathloss_csv(table, path)
        loaded = load_pathloss_csv(path)
        assert loaded.keys() == table.keys()
        for key in table:
            assert loaded[key] == pytest.approx(table[key], abs=1e-5)

    def test_pairs_normalized_on_save(self):
        buffer = io.StringIO()
        save_pathloss_csv({(3, 1): 70.0}, buffer)
        buffer.seek(0)
        assert load_pathloss_csv(buffer) == {(1, 3): 70.0}

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            load_pathloss_csv(io.StringIO("a,b,c\n0,1,60\n"))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError, match="invalid pair"):
            load_pathloss_csv(io.StringIO("i,j,path_loss_db\n2,2,60\n"))

    def test_nonpositive_loss_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            load_pathloss_csv(io.StringIO("i,j,path_loss_db\n0,1,-5\n"))

    def test_duplicate_pair_rejected(self):
        content = "i,j,path_loss_db\n0,1,60\n1,0,61\n"
        with pytest.raises(ValueError, match="duplicate"):
            load_pathloss_csv(io.StringIO(content))

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError, match="3 fields"):
            load_pathloss_csv(io.StringIO("i,j,path_loss_db\n0,1\n"))


class TestSyntheticCampaign:
    def test_covers_all_pairs(self):
        table = synthetic_campaign()
        assert len(table) == 45  # C(10, 2)

    def test_deterministic_per_seed(self):
        assert synthetic_campaign(seed=4) == synthetic_campaign(seed=4)
        assert synthetic_campaign(seed=4) != synthetic_campaign(seed=5)

    def test_zero_sigma_reproduces_parametric_law(self):
        table = synthetic_campaign(per_pair_sigma_db=0.0)
        reference = full_table()
        for key, value in table.items():
            assert value == pytest.approx(reference[key])

    def test_offsets_bounded_by_floor(self):
        params = PathLossParameters()
        table = synthetic_campaign(per_pair_sigma_db=50.0, seed=1)
        assert all(v >= params.min_path_loss_db for v in table.values())

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            synthetic_campaign(per_pair_sigma_db=-1.0)

    def test_campaign_usable_as_measured_channel(self):
        campaign = synthetic_campaign(seed=2)
        model = MeanPathLossModel(STANDARD_BODY, measured=campaign)
        assert model.mean_path_loss(0, 3) == pytest.approx(campaign[(0, 3)])


class TestDisagreement:
    def test_identical_tables(self):
        table = full_table()
        stats = table_disagreement_db(table, table)
        assert stats["mean_abs_db"] == 0.0
        assert stats["max_abs_db"] == 0.0

    def test_campaign_disagreement_scales_with_sigma(self):
        base = full_table()
        small = table_disagreement_db(
            base, synthetic_campaign(per_pair_sigma_db=1.0, seed=7)
        )
        large = table_disagreement_db(
            base, synthetic_campaign(per_pair_sigma_db=8.0, seed=7)
        )
        assert large["rms_db"] > small["rms_db"]

    def test_disjoint_tables_rejected(self):
        with pytest.raises(ValueError):
            table_disagreement_db({(0, 1): 60.0}, {(2, 3): 70.0})


class TestHarvestingLifetime:
    def test_income_extends_lifetime(self):
        plain = CR2032.lifetime_days(1.0)
        harvested = CR2032.lifetime_days(1.0, harvest_mw=0.5)
        assert harvested == pytest.approx(2 * plain)

    def test_energy_neutral_is_infinite(self):
        assert math.isinf(CR2032.lifetime_days(0.8, harvest_mw=0.8))
        assert math.isinf(CR2032.lifetime_days(0.8, harvest_mw=1.2))

    def test_negative_income_rejected(self):
        with pytest.raises(ValueError):
            CR2032.lifetime_days(1.0, harvest_mw=-0.1)

    def test_lifetime_seconds_consistent_with_harvest(self):
        assert CR2032.lifetime_s(1.0, 0.5) == pytest.approx(
            CR2032.lifetime_days(1.0, 0.5) * 86400.0
        )
