"""CLI coverage: parsing, flag propagation, observability outputs.

Execution-heavy subcommands are exercised only on the smoke preset (or
parse-only) so the suite stays fast; the point is the *plumbing* — every
flag must reach the layer that consumes it.
"""

import json

import pytest

from repro import cli
from repro.analysis.trace_report import summarize
from repro.obs import read_trace

ALL_COMMANDS = (
    "solve", "figure3", "reduction", "annealing",
    "table1", "dual", "extensions", "space",
    "robust", "robustness", "bench", "campaign", "serve",
)

#: subcommands without --preset/--seed (runtime flags only)
RUNTIME_ONLY_COMMANDS = ("table1", "bench", "serve")

#: minimal valid argv per subcommand (parse-level only)
PARSE_ARGV = {
    "solve": ["solve", "--pdr-min", "90"],
    "figure3": ["figure3"],
    "reduction": ["reduction"],
    "annealing": ["annealing"],
    "table1": ["table1"],
    "dual": ["dual", "--min-lifetime-days", "15"],
    "extensions": ["extensions"],
    "space": ["space"],
    "robust": ["robust", "--pdr-min", "85"],
    "robustness": ["robustness"],
    "bench": ["bench"],
    "campaign": ["campaign"],
    "serve": ["serve", "--root", "/tmp/fleet"],
}


class TestParsing:
    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_every_subcommand_parses(self, command):
        args = cli.build_parser().parse_args(PARSE_ARGV[command])
        assert args.command == command

    @pytest.mark.parametrize(
        "command", sorted(set(ALL_COMMANDS) - set(RUNTIME_ONLY_COMMANDS))
    )
    def test_common_flags_parse_everywhere(self, command):
        argv = PARSE_ARGV[command] + [
            "--preset", "smoke", "--seed", "7", "--jobs", "2",
            "--cache-dir", "/tmp/c", "--trace-out", "/tmp/t.jsonl",
            "--metrics-out", "/tmp/m.json",
        ]
        args = cli.build_parser().parse_args(argv)
        assert (args.preset, args.seed, args.jobs) == ("smoke", 7, 2)
        assert args.cache_dir == "/tmp/c"
        assert args.trace_out == "/tmp/t.jsonl"
        assert args.metrics_out == "/tmp/m.json"

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_runtime_flags_parse_on_every_subcommand(self, command):
        """The add_runtime_flags hoist: every subcommand — including
        table1, bench, campaign, and serve — takes the uniform runtime
        surface (--jobs/--cache-dir/--trace-out/--metrics-out)."""
        argv = PARSE_ARGV[command] + [
            "--jobs", "2", "--cache-dir", "/tmp/c",
            "--trace-out", "/tmp/t.jsonl", "--metrics-out", "/tmp/m.json",
        ]
        args = cli.build_parser().parse_args(argv)
        assert args.jobs == 2
        assert args.cache_dir == "/tmp/c"
        assert args.trace_out == "/tmp/t.jsonl"
        assert args.metrics_out == "/tmp/m.json"

    def test_unknown_flag_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(["solve", "--pdr-min", "90",
                                           "--no-such-flag"])
        assert exc.value.code != 0

    def test_missing_subcommand_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args([])
        assert exc.value.code != 0

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["solve", "--pdr-min", "90",
                                           "--preset", "nope"])

    def test_solve_requires_pdr_min(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["solve"])


class TestFlagPropagation:
    def test_jobs_and_cache_dir_reach_make_problem(self, monkeypatch, tmp_path):
        """--jobs/--cache-dir must flow into the problem construction."""
        from repro.experiments import scenario as scenario_mod

        seen = {}
        real_make_problem = scenario_mod.make_problem

        def spy(pdr_min, preset, **kwargs):
            seen.update(kwargs, pdr_min=pdr_min, preset=preset)
            # run serially regardless, to keep the test light
            kwargs = dict(kwargs, n_jobs=1)
            return real_make_problem(pdr_min, preset, **kwargs)

        monkeypatch.setattr(scenario_mod, "make_problem", spy)
        code = cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke",
            "--seed", "3", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert seen["pdr_min"] == 0.90
        assert seen["preset"] == "smoke"
        assert seen["seed"] == 3
        assert seen["n_jobs"] == 2
        assert seen["cache_dir"] == str(tmp_path / "cache")
        # the persistent cache actually materialized where we pointed it
        assert list((tmp_path / "cache").glob("*.jsonl"))

    def test_pdr_min_accepts_percent_or_fraction(self, monkeypatch):
        from repro.experiments import scenario as scenario_mod

        captured = []
        real = scenario_mod.make_problem

        def spy(pdr_min, preset, **kwargs):
            captured.append(pdr_min)
            return real(pdr_min, preset, **dict(kwargs, n_jobs=1))

        monkeypatch.setattr(scenario_mod, "make_problem", spy)
        cli.main(["solve", "--pdr-min", "90", "--preset", "smoke"])
        cli.main(["solve", "--pdr-min", "0.9", "--preset", "smoke"])
        assert captured == [0.90, 0.90]


class TestObservabilityOutputs:
    def test_trace_out_writes_manifest_then_events(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke",
            "--trace-out", str(trace),
        ])
        assert code == 0
        events = read_trace(trace)
        assert events[0]["kind"] == "manifest"
        manifest = events[0]
        assert manifest["command"] == "solve"
        assert manifest["preset"] == "smoke"
        assert manifest["seed"] == 0
        assert len(manifest["scenario_fingerprint"]) == 16
        kinds = {e["kind"] for e in events}
        # every instrumented layer contributed
        assert "explorer.start" in kinds
        assert "explorer.candidate" in kinds
        assert "explorer.done" in kinds
        assert "oracle.evaluate" in kinds
        assert "milp.solve" in kinds
        assert "des.run" in kinds
        assert events[-1]["kind"] == "run.exit"
        assert events[-1]["code"] == 0

    def test_metrics_out_writes_registry_json(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code = cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["explorer.runs"]["value"] == 1
        assert payload["milp.solves"]["value"] >= 1
        assert payload["simplex.solves"]["value"] >= 1
        assert payload["des.runs"]["value"] >= 1
        assert payload["oracle.wall_seconds"]["count"] >= 1

    def test_trace_report_summarizes_run(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke",
            "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        report = summarize(read_trace(trace))
        assert "manifest" in report
        assert "explorer trajectory" in report
        assert "accept" in report
        assert "oracle" in report and "milp" in report
        from repro.analysis import trace_report

        assert trace_report.main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "explorer trajectory" in out
        assert trace_report.main([str(trace), "--json"]) == 0
        json.loads(capsys.readouterr().out)  # --json emits valid JSON

    def test_trace_report_usage_errors(self, tmp_path, capsys):
        from repro.analysis import trace_report

        assert trace_report.main([]) == 2
        assert trace_report.main([str(tmp_path / "missing.jsonl")]) != 0

    def test_table1_needs_no_observability(self, capsys):
        assert cli.main(["table1"]) == 0
        assert "CC2650" in capsys.readouterr().out

    def test_space_runs_without_flags(self, capsys):
        assert cli.main(["space", "--preset", "smoke"]) == 0
        assert "configurations" in capsys.readouterr().out


class TestJobsValidation:
    """``--jobs`` must be a positive integer; 0 and negatives used to be
    silently forwarded to ``resolve_jobs`` with surprising semantics."""

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "many"])
    def test_invalid_jobs_rejected_at_parse_time(self, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(
                ["solve", "--pdr-min", "90", "--jobs", bad]
            )
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_positive_jobs_accepted(self):
        args = cli.build_parser().parse_args(
            ["solve", "--pdr-min", "90", "--jobs", "3"]
        )
        assert args.jobs == 3


class TestJobsAutoDetect:
    """An omitted ``--jobs`` resolves to the detected core count (clamped
    to the preset's feasible-configuration count); explicit values pass
    through untouched.  The manifest records both request and resolution."""

    def test_omitted_jobs_autodetects(self):
        args = cli.build_parser().parse_args(
            ["solve", "--pdr-min", "90", "--preset", "smoke"]
        )
        assert args.jobs is None
        cli._resolve_jobs(args)
        assert args.jobs_requested is None
        assert args.jobs >= 1

    def test_explicit_jobs_passes_through(self):
        args = cli.build_parser().parse_args(
            ["solve", "--pdr-min", "90", "--jobs", "1"]
        )
        cli._resolve_jobs(args)
        assert args.jobs == 1
        assert args.jobs_requested == 1

    def test_auto_jobs_clamps_to_work_items(self):
        from repro.core.parallel import auto_jobs

        assert auto_jobs(limit=1) == 1
        assert auto_jobs(limit=None) >= 1
        # A limit below one still yields a worker.
        assert auto_jobs(limit=0) == 1


class TestBenchCommand:
    def test_bench_parses_with_defaults(self):
        args = cli.build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.preset == "ci"
        assert args.suite == "hotpath"
        # --out defaults per suite at dispatch time (BENCH_<suite>.json)
        assert args.out is None
        assert args.repeats == 3
        assert args.des_events == 50_000

    def test_bench_fleet_suite_parses(self):
        args = cli.build_parser().parse_args([
            "bench", "--suite", "fleet", "--wearers", "4",
            "--workers", "3",
        ])
        assert (args.suite, args.wearers, args.workers) == ("fleet", 4, 3)
        assert args.out is None

    def test_bench_flags_parse(self):
        args = cli.build_parser().parse_args([
            "bench", "--preset", "smoke", "--out", "x.json",
            "--repeats", "1", "--des-events", "1000",
        ])
        assert (args.preset, args.out, args.repeats, args.des_events) == (
            "smoke", "x.json", 1, 1000
        )

    def test_bench_runs_on_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert cli.main([
            "bench", "--preset", "smoke", "--out", str(out),
            "--repeats", "1", "--des-events", "2000",
        ]) == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "hotpath"
        assert report["single_replicate"]["bit_identical_outcome"]
        assert report["milp_warm_vs_cold"]["identical_objectives"]
        assert "wrote" in capsys.readouterr().out


class TestRobustCommands:
    def test_robust_requires_pdr_min(self):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(["robust"])
        assert exc.value.code != 0

    def test_robust_flags_parse(self):
        args = cli.build_parser().parse_args([
            "robust", "--pdr-min", "85", "--quantile", "0.25",
            "--ensemble-size", "4", "--hub-stress",
            "--outage-fraction", "0.3", "--fault-seed", "9",
        ])
        assert args.pdr_min == 85.0
        assert args.quantile == 0.25
        assert args.ensemble_size == 4
        assert args.hub_stress is True
        assert args.outage_fraction == 0.3
        assert args.fault_seed == 9

    def test_robust_runs_on_smoke(self, capsys):
        assert cli.main([
            "robust", "--pdr-min", "85", "--preset", "smoke", "--seed", "3",
            "--ensemble-size", "2", "--hub-stress", "--quantile", "0",
            "--outage-fraction", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault ensemble" in out
        assert "q-PDR" in out

    def test_robust_infeasible_exits_one(self, capsys):
        # A 60% outage at quantile 0 is unsatisfiable at PDRmin=95%.
        assert cli.main([
            "robust", "--pdr-min", "95", "--preset", "smoke", "--seed", "3",
            "--ensemble-size", "1", "--hub-stress", "--quantile", "0",
            "--outage-fraction", "0.6",
        ]) == 1
        assert "infeasible" in capsys.readouterr().out


class TestJournalFlags:
    """--out/--resume plumbing: crash-safe journals from the CLI."""

    def test_out_and_resume_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(
                ["solve", "--pdr-min", "90", "--out", "a", "--resume", "b"]
            )
        assert exc.value.code == 2

    def test_journal_flags_parse_on_solve_and_robust(self):
        args = cli.build_parser().parse_args(
            ["solve", "--pdr-min", "90", "--out", "run"]
        )
        assert args.out == "run" and args.resume is None
        args = cli.build_parser().parse_args(
            ["robust", "--pdr-min", "85", "--resume", "run"]
        )
        assert args.resume == "run" and args.out is None

    def test_correlated_links_parses(self):
        args = cli.build_parser().parse_args(
            ["robust", "--pdr-min", "85", "--correlated-links"]
        )
        assert args.correlated_links is True
        args = cli.build_parser().parse_args(["robust", "--pdr-min", "85"])
        assert args.correlated_links is False

    def _solve_argv(self, extra):
        return [
            "solve", "--pdr-min", "90", "--preset", "smoke", "--jobs", "1",
        ] + extra

    def test_solve_kill_and_resume_reproduces_summary(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert cli.main(self._solve_argv(["--out", str(run_dir)])) == 0
        out = capsys.readouterr().out
        assert "run journal:" in out and "run summary:" in out
        summary_path = run_dir / "summary.json"
        golden = summary_path.read_text()

        # simulate a SIGKILL mid-run: keep a journal prefix + torn tail,
        # drop the summary (it is written only at completion)
        journal_path = run_dir / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        assert len(lines) > 5
        journal_path.write_text("\n".join(lines[:4]) + "\n" + lines[4][:30])
        summary_path.unlink()

        assert cli.main(self._solve_argv(["--resume", str(run_dir)])) == 0
        capsys.readouterr()
        assert summary_path.read_text() == golden
        # the journal healed back to the full trajectory
        assert len(journal_path.read_text().splitlines()) == len(lines)

    def test_resume_with_mismatched_arguments_exits_two(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert cli.main(self._solve_argv(["--out", str(run_dir)])) == 0
        capsys.readouterr()
        code = cli.main([
            "solve", "--pdr-min", "80", "--preset", "smoke", "--jobs", "1",
            "--resume", str(run_dir),
        ])
        assert code == 2
        assert "manifest mismatch" in capsys.readouterr().err

    def test_resume_without_journal_exits_two(self, tmp_path, capsys):
        code = cli.main(
            self._solve_argv(["--resume", str(tmp_path / "nowhere")])
        )
        assert code == 2
        assert "no journal to resume" in capsys.readouterr().err

    def test_out_refuses_existing_journal(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert cli.main(self._solve_argv(["--out", str(run_dir)])) == 0
        capsys.readouterr()
        assert cli.main(self._solve_argv(["--out", str(run_dir)])) == 2
        assert "already exists" in capsys.readouterr().err

    def test_robust_kill_and_resume_reproduces_summary(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        argv = [
            "robust", "--pdr-min", "85", "--preset", "smoke", "--seed", "3",
            "--ensemble-size", "2", "--hub-stress", "--quantile", "0",
            "--outage-fraction", "0.2", "--jobs", "1",
        ]
        assert cli.main(argv + ["--out", str(run_dir)]) == 0
        capsys.readouterr()
        summary_path = run_dir / "summary.json"
        golden = summary_path.read_text()
        journal_path = run_dir / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        assert len(lines) > 3
        journal_path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:30])
        summary_path.unlink()

        assert cli.main(argv + ["--resume", str(run_dir)]) == 0
        capsys.readouterr()
        assert summary_path.read_text() == golden
        assert len(journal_path.read_text().splitlines()) == len(lines)


class TestCampaignCommand:
    """The campaign subcommand: population flags, directory plumbing,
    and the byte-identical resume guarantee at CLI level."""

    def test_campaign_parses_with_defaults(self):
        args = cli.build_parser().parse_args(["campaign"])
        assert args.command == "campaign"
        assert args.wearers == 4
        assert args.mode == "solve"
        assert args.pdr_min is None and args.spec is None
        assert args.out is None and args.resume is None

    def test_out_and_resume_are_mutually_exclusive(self):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(
                ["campaign", "--out", "a", "--resume", "b"]
            )
        assert exc.value.code == 2

    def test_campaign_requires_directory(self, capsys):
        assert cli.main(["campaign", "--preset", "smoke", "--jobs", "1"]) == 2
        assert "--out" in capsys.readouterr().err

    def _argv(self, extra):
        return [
            "campaign", "--wearers", "2", "--preset", "smoke",
            "--pdr-min", "90", "--jobs", "1",
        ] + extra

    def test_campaign_runs_and_resumes_byte_identical(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert cli.main(self._argv(["--out", str(camp)])) == 0
        out = capsys.readouterr().out
        assert "aggregate fingerprint:" in out
        assert "campaign aggregate:" in out
        golden = (camp / "aggregate.json").read_text()
        golden_atlas = (camp / "atlas.json").read_text()

        # simulate a kill: one wearer keeps only a torn journal prefix,
        # losing its summary; the other is untouched (already complete)
        victims = sorted(camp.glob("shards/*/*/journal.jsonl"))
        assert victims
        lines = victims[0].read_text().splitlines()
        victims[0].write_text("\n".join(lines[:3]) + "\n" + lines[3][:25])
        (victims[0].parent / "summary.json").unlink()
        (camp / "aggregate.json").unlink()

        assert cli.main(self._argv(["--resume", str(camp)])) == 0
        capsys.readouterr()
        assert (camp / "aggregate.json").read_text() == golden
        assert (camp / "atlas.json").read_text() == golden_atlas

    def test_out_refuses_existing_campaign(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert cli.main(self._argv(["--out", str(camp)])) == 0
        capsys.readouterr()
        assert cli.main(self._argv(["--out", str(camp)])) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_campaign_exits_two(self, tmp_path, capsys):
        code = cli.main(self._argv(["--resume", str(tmp_path / "nowhere")]))
        assert code == 2
        assert "no campaign" in capsys.readouterr().err

    def test_spec_file_round_trips(self, tmp_path, capsys):
        from repro.campaign.spec import CampaignSpec, make_population

        spec = make_population(
            2, preset="smoke", base_seed=11, name="from-file"
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        camp = tmp_path / "camp"
        assert cli.main([
            "campaign", "--spec", str(spec_path), "--jobs", "1",
            "--out", str(camp),
        ]) == 0
        assert "from-file" in capsys.readouterr().out
        assert CampaignSpec.load(spec_path).fingerprint() == spec.fingerprint()


class TestServeParsing:
    def test_serve_requires_root(self):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(["serve"])
        assert exc.value.code == 2

    def test_serve_defaults(self):
        args = cli.build_parser().parse_args(["serve", "--root", "/tmp/f"])
        assert args.root == "/tmp/f"
        assert (args.host, args.port) == ("127.0.0.1", 8732)
        assert args.shards is None
        assert args.lease_ttl == 30.0

    def test_serve_lease_ttl_parses(self):
        args = cli.build_parser().parse_args(
            ["serve", "--root", "/tmp/f", "--lease-ttl", "2.5"]
        )
        assert args.lease_ttl == 2.5


class TestWorkerParsing:
    def test_worker_requires_coordinator_and_workdir(self):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(["worker"])
        assert exc.value.code == 2

    def test_worker_defaults(self):
        args = cli.build_parser().parse_args([
            "worker", "--coordinator", "http://127.0.0.1:8732",
            "--workdir", "/tmp/w",
        ])
        assert args.coordinator == "http://127.0.0.1:8732"
        assert args.workdir == "/tmp/w"
        assert args.name is None
        assert args.poll == 1.0
        assert args.exit_idle is None

    def test_worker_flags_parse(self):
        args = cli.build_parser().parse_args([
            "worker", "--coordinator", "http://h:1", "--workdir", "/w",
            "--name", "rig-7", "--poll", "0.2", "--exit-idle", "5",
            "--jobs", "2",
        ])
        assert (args.name, args.poll, args.exit_idle) == ("rig-7", 0.2, 5.0)
        assert args.jobs == 2


class TestCampaignReportSection:
    """trace_report renders campaign fleet activity and stays silent on
    traces that predate the campaign events."""

    def test_campaign_events_render(self):
        report = summarize([
            {"kind": "campaign.start", "seq": 1, "t": 0.0,
             "campaign": "abcd", "name": "fleet", "preset": "smoke",
             "wearers": 2, "shards": 1, "jobs": 1},
            {"kind": "campaign.wearer_done", "seq": 2, "t": 0.4,
             "campaign": "abcd", "wearer_id": "w000", "state": "ran",
             "found": True},
            {"kind": "campaign.wearer_done", "seq": 3, "t": 0.8,
             "campaign": "abcd", "wearer_id": "w001", "state": "resumed",
             "found": True},
            {"kind": "campaign.done", "seq": 4, "t": 1.0,
             "campaign": "abcd", "aggregate_fingerprint": "ffff",
             "feasible": 2, "wearers": 2},
        ])
        assert "campaign" in report
        assert "start: fleet [abcd] preset=smoke" in report
        assert "wearers completed: 2 (1 ran, 1 resumed), 2 feasible" in report
        assert "done: aggregate ffff  feasible 2/2" in report

    def test_traces_without_campaign_events_skip_section(self):
        report = summarize([
            {"kind": "des.run", "seq": 1, "t": 0.1, "events": 10},
        ])
        assert "campaign" not in report


class TestFabricReportSection:
    """``trace_report`` renders lease-queue/worker fabric activity and
    stays silent on traces that predate the fabric events."""

    def test_fabric_events_render(self):
        report = summarize([
            {"kind": "queue.lease", "seq": 1, "t": 0.1,
             "campaign": "abcd", "shard": 0, "worker": "w1"},
            {"kind": "queue.lease", "seq": 2, "t": 0.2,
             "campaign": "abcd", "shard": 1, "worker": "w2"},
            {"kind": "queue.expire", "seq": 3, "t": 0.5,
             "campaign": "abcd", "shard": 0, "worker": "w1"},
            {"kind": "queue.lease", "seq": 4, "t": 0.6,
             "campaign": "abcd", "shard": 0, "worker": "w2"},
            {"kind": "queue.commit", "seq": 5, "t": 0.9,
             "campaign": "abcd", "shard": 1, "worker": "w2",
             "duplicate": False},
            {"kind": "queue.commit", "seq": 6, "t": 1.0,
             "campaign": "abcd", "shard": 0, "worker": "w2",
             "duplicate": False},
            {"kind": "queue.commit", "seq": 7, "t": 1.1,
             "campaign": "abcd", "shard": 0, "worker": "w1",
             "duplicate": True},
            {"kind": "queue.release", "seq": 8, "t": 1.2,
             "campaign": "abcd", "shard": 2, "worker": "w1",
             "reason": "drain"},
            {"kind": "queue.done", "seq": 9, "t": 1.5,
             "campaign": "abcd", "aggregate_fingerprint": "ffff",
             "feasible": 2, "wearers": 2},
        ])
        assert "fabric (lease queue / workers)" in report
        assert "leases granted: 3 to 2 worker(s) (w1, w2)" in report
        assert "lease expirations (reassignments): 1 (1x w1)" in report
        assert "voluntary releases: 1" in report
        assert "shard commits: 2 (+1 duplicate no-op(s))" in report
        assert "w2: 2 shard(s)" in report
        assert "done: aggregate ffff  feasible 2/2" in report

    def test_worker_side_trace_renders_commit_activity(self):
        # A worker's own trace has no queue.* events (those live in the
        # coordinator's trace) — the section renders the agent's view.
        report = summarize([
            {"kind": "worker.lease", "seq": 1, "t": 0.1,
             "worker": "wt", "campaign": "abcd", "shard": 0, "wearers": 2},
            {"kind": "worker.commit", "seq": 2, "t": 0.9,
             "worker": "wt", "campaign": "abcd", "shard": 0,
             "duplicate": False, "wearers": 2, "wearers_resumed": 2,
             "campaign_state": "done"},
        ])
        assert "fabric (lease queue / workers)" in report
        assert "shards run and committed: 1" in report
        assert "wt: 1 shard(s) (2 wearer(s) resumed from journals)" in report

    def test_steal_and_cache_events_render(self):
        report = summarize([
            {"kind": "queue.split", "seq": 1, "t": 0.1,
             "campaign": "abcd", "shard": 0, "holder": "slow",
             "wearers": 3},
            {"kind": "queue.steal", "seq": 2, "t": 0.2,
             "campaign": "abcd", "shard": 0, "wearer_id": "w002",
             "worker": "fast"},
            {"kind": "queue.steal", "seq": 3, "t": 0.3,
             "campaign": "abcd", "shard": 0, "wearer_id": "w001",
             "worker": "fast"},
            {"kind": "queue.sub_commit", "seq": 4, "t": 0.6,
             "campaign": "abcd", "shard": 0, "wearer_id": "w002",
             "worker": "fast", "duplicate": False},
            {"kind": "cache.wearer", "seq": 5, "t": 0.7,
             "action": "hit", "source": "coordinator",
             "fingerprint": "aa" * 8},
            {"kind": "cache.wearer", "seq": 6, "t": 0.8,
             "action": "hit", "source": "local",
             "fingerprint": "bb" * 8},
            {"kind": "cache.wearer", "seq": 7, "t": 0.9,
             "action": "store", "fingerprint": "cc" * 8},
        ])
        assert "fabric (lease queue / workers)" in report
        assert ("work stealing: 1 shard(s) split, 2 wearer(s) stolen "
                "(2x fast), 1 sub-commit(s)") in report
        assert ("wearer cache: 2 hit(s) (1 via coordinator, 1 via local), "
                "1 store(s)") in report

    def test_partial_fabric_events_never_keyerror(self):
        report = summarize([
            {"kind": "queue.lease", "seq": 1, "t": 0.1},
            {"kind": "queue.commit", "seq": 2, "t": 0.2},
            {"kind": "worker.commit", "seq": 3, "t": 0.3},
            {"kind": "queue.split", "seq": 4, "t": 0.4},
            {"kind": "queue.steal", "seq": 5, "t": 0.5},
            {"kind": "queue.sub_commit", "seq": 6, "t": 0.6},
            {"kind": "cache.wearer", "seq": 7, "t": 0.7},
        ])
        assert "fabric (lease queue / workers)" in report

    def test_pre_fabric_traces_skip_section(self):
        report = summarize([
            {"kind": "campaign.start", "seq": 1, "t": 0.0,
             "campaign": "abcd", "name": "f", "preset": "smoke",
             "wearers": 1, "shards": 1, "jobs": 1},
        ])
        assert "fabric" not in report


class TestPoolReportSection:
    """Satellite: ``trace_report`` renders pool resilience activity and
    degrades gracefully on traces that predate the pool events."""

    def test_pool_events_render(self):
        report = summarize([
            {"kind": "pool.retry", "seq": 1, "t": 0.1, "tasks": 3,
             "hung_task": None, "round": 0},
            {"kind": "pool.respawn", "seq": 2, "t": 0.2,
             "reason": "broken pool", "round": 0},
            {"kind": "pool.retry", "seq": 3, "t": 0.3, "tasks": 1,
             "hung_task": 4, "round": 1},
            {"kind": "pool.respawn", "seq": 4, "t": 0.4,
             "reason": "hung worker", "round": 1},
            {"kind": "pool.quarantine", "seq": 5, "t": 0.5,
             "task_index": 4, "strikes": 3},
            {"kind": "pool.degraded", "seq": 6, "t": 0.6,
             "reason": "5 pool respawns in one batch (limit 3)"},
        ])
        assert "worker pool resilience" in report
        assert "retries: 4 task(s) over 2 round(s)" in report
        assert "pool respawns: 2" in report
        assert "1x broken pool" in report and "1x hung worker" in report
        assert "quarantined tasks: 1 (indices 4)" in report
        assert "DEGRADED TO SERIAL: 5 pool respawns" in report

    def test_partial_pool_events_never_keyerror(self):
        # fields stripped entirely — the renderer must fall back, not raise
        report = summarize([
            {"kind": "pool.retry", "seq": 1, "t": 0.1},
            {"kind": "pool.respawn", "seq": 2, "t": 0.2},
            {"kind": "pool.quarantine", "seq": 3, "t": 0.3},
            {"kind": "pool.degraded", "seq": 4, "t": 0.4},
        ])
        assert "worker pool resilience" in report
        assert "1x unknown" in report
        assert "indices ?" in report
        assert "DEGRADED TO SERIAL: unknown reason" in report

    def test_pre_pool_trace_skips_section(self, tmp_path, capsys):
        assert cli.main([
            "solve", "--pdr-min", "90", "--preset", "smoke", "--jobs", "1",
            "--trace-out", str(tmp_path / "run.jsonl"),
        ]) == 0
        capsys.readouterr()
        report = summarize(read_trace(tmp_path / "run.jsonl"))
        assert "worker pool resilience" not in report
        assert "explorer trajectory" in report  # everything else intact


class TestTraceReportDegradation:
    """Broken inputs produce a diagnostic and exit 1, never a traceback."""

    def _report(self, argv, capsys):
        from repro.analysis import trace_report

        code = trace_report.main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_missing_trace_file(self, tmp_path, capsys):
        code, _out, err = self._report(
            [str(tmp_path / "missing.jsonl")], capsys
        )
        assert code == 1
        assert "cannot read trace" in err

    def test_empty_trace_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n  \n")
        code, _out, err = self._report([str(empty)], capsys)
        assert code == 1
        assert "no trace events" in err

    def test_truncated_trace_still_reports(self, tmp_path, capsys):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            json.dumps({"kind": "manifest", "seq": 1, "t": 0.0,
                        "command": "solve"}) + "\n"
            + json.dumps({"kind": "oracle.evaluate", "seq": 2, "t": 0.1,
                          "cached": False, "wall_s": 0.05,
                          "replicates": 1}) + "\n"
            + '{"kind": "oracle.eval'  # the kill-mid-write case
        )
        code, out, err = self._report([str(truncated)], capsys)
        assert code == 1
        assert "skipped 1 malformed line" in err
        # The readable prefix is still reported.
        assert "manifest" in out and "oracle" in out

    def test_missing_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            json.dumps({"kind": "manifest", "seq": 1, "t": 0.0}) + "\n"
        )
        code, out, err = self._report(
            ["--metrics", str(tmp_path / "missing.json"), str(trace)], capsys
        )
        assert code == 1
        assert "cannot read metrics" in err
        assert "manifest" in out  # the trace report itself still renders

    def test_empty_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            json.dumps({"kind": "manifest", "seq": 1, "t": 0.0}) + "\n"
        )
        metrics = tmp_path / "m.json"
        metrics.write_text("")
        code, _out, err = self._report(
            ["--metrics", str(metrics), str(trace)], capsys
        )
        assert code == 1
        assert "bad metrics file" in err and "empty" in err

    def test_truncated_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            json.dumps({"kind": "manifest", "seq": 1, "t": 0.0}) + "\n"
        )
        metrics = tmp_path / "m.json"
        metrics.write_text('{"oracle.simulations": {"type": "coun')
        code, _out, err = self._report(
            ["--metrics", str(metrics), str(trace)], capsys
        )
        assert code == 1
        assert "bad metrics file" in err and "truncated" in err

    def test_valid_metrics_render_section(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            json.dumps({"kind": "manifest", "seq": 1, "t": 0.0}) + "\n"
        )
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps({
            "oracle.simulations": {"type": "counter", "value": 12},
            "oracle.wall_seconds": {
                "type": "histogram", "count": 12, "total": 0.6,
                "mean": 0.05, "min": 0.01, "max": 0.2,
                "p50": 0.04, "p95": 0.18, "p99": 0.2,
            },
        }))
        code, out, _err = self._report(
            ["--metrics", str(metrics), str(trace)], capsys
        )
        assert code == 0
        assert "metrics" in out
        assert "oracle.simulations" in out
        assert "p95=0.18" in out

    def test_metrics_without_path_is_usage_error(self, tmp_path, capsys):
        code, _out, _err = self._report(["--metrics"], capsys)
        assert code == 2
