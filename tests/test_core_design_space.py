"""Tests for configurations, placement constraints, and the design space."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.design_space import (
    Configuration,
    DesignSpace,
    PlacementConstraints,
)
from repro.library.mac_options import MacKind, RoutingKind


def config(placement=(0, 1, 3, 6), tx=-10.0, mac=MacKind.CSMA,
           routing=RoutingKind.STAR):
    return Configuration(placement, tx, mac, routing)


class TestConfiguration:
    def test_placement_normalized(self):
        c = config(placement=(6, 0, 3, 1, 3))
        assert c.placement == (0, 1, 3, 6)
        assert c.num_nodes == 4

    def test_label(self):
        assert config().label() == "[chest,hipL,ankL,wriR] star/csma/-10dBm"

    def test_key_distinguishes_components(self):
        base = config()
        assert base.key() != config(tx=0.0).key()
        assert base.key() != config(mac=MacKind.TDMA).key()
        assert base.key() != config(routing=RoutingKind.MESH).key()
        assert base.key() != config(placement=(0, 1, 3, 5)).key()
        assert base.key() == config().key()

    def test_orderable(self):
        configs = [config(tx=0.0), config(tx=-20.0)]
        assert sorted(configs)[0].tx_dbm == -20.0


class TestPlacementConstraints:
    def test_design_example_satisfaction(self):
        cons = PlacementConstraints()
        assert cons.satisfied_by((0, 1, 3, 5))
        assert cons.satisfied_by((0, 2, 4, 6, 7, 8))
        assert not cons.satisfied_by((1, 2, 3, 5))      # no chest
        assert not cons.satisfied_by((0, 3, 4, 5))       # no hip
        assert not cons.satisfied_by((0, 1, 2, 5))       # no foot
        assert not cons.satisfied_by((0, 1, 3, 8))       # no wrist
        assert not cons.satisfied_by((0, 1, 2, 3, 4, 5, 6))  # > 6 nodes

    def test_effective_min_nodes_design_example(self):
        assert PlacementConstraints().effective_min_nodes == 4

    def test_effective_min_nodes_no_groups(self):
        cons = PlacementConstraints(required=(0, 1), at_least_one_of=())
        assert cons.effective_min_nodes == 2

    def test_effective_min_nodes_overlapping_groups(self):
        # Groups {1,2} and {2,3} share location 2: one node covers both.
        cons = PlacementConstraints(
            required=(0,), at_least_one_of=((1, 2), (2, 3))
        )
        assert cons.effective_min_nodes == 2

    def test_effective_min_nodes_group_covered_by_required(self):
        cons = PlacementConstraints(
            required=(0, 1), at_least_one_of=((1, 2), (3, 4))
        )
        assert cons.effective_min_nodes == 3


class TestDesignSpace:
    def setup_method(self):
        self.space = DesignSpace()

    def test_total_size_matches_paper(self):
        """Sec. 4.1: 'our design space contains 12,288 potential
        configurations (10 node positions, 3 radio Tx power levels, 2 MAC
        layer options, and 2 routing schemes)'."""
        assert self.space.total_size == 12288

    def test_feasible_count_structure(self):
        # 8 four-node + 36 five-node + 66 six-node placements, x 12 combos.
        assert self.space.placements_by_size() == [(4, 8), (5, 36), (6, 66)]
        assert self.space.feasible_count() == 110 * 12

    def test_all_enumerated_placements_satisfy_constraints(self):
        cons = self.space.constraints
        placements = list(self.space.placements())
        assert len(placements) == 110
        assert all(cons.satisfied_by(p) for p in placements)
        assert len(set(placements)) == len(placements)

    def test_feasible_configurations_unique(self):
        keys = [c.key() for c in self.space.feasible_configurations()]
        assert len(keys) == len(set(keys))

    def test_contains(self):
        assert self.space.contains(config())
        assert not self.space.contains(config(tx=5.0))
        assert not self.space.contains(config(placement=(0, 1, 3, 8)))

    def test_contains_rejects_out_of_range_locations(self):
        c = Configuration((0, 1, 3, 6, 12), -10.0, MacKind.CSMA,
                          RoutingKind.STAR)
        assert not self.space.contains(c)

    def test_enumeration_deterministic(self):
        a = [c.key() for c in self.space.feasible_configurations()]
        b = [c.key() for c in self.space.feasible_configurations()]
        assert a == b

    @given(seed=st.integers(0, 1000))
    def test_every_enumerated_config_contained(self, seed):
        import random

        rng = random.Random(seed)
        configs = list(self.space.feasible_configurations())
        pick = configs[rng.randrange(len(configs))]
        assert self.space.contains(pick)


class TestReducedSpaces:
    def test_max_nodes_four(self):
        space = DesignSpace(constraints=PlacementConstraints(max_nodes=4))
        assert space.placements_by_size() == [(4, 8)]
        assert space.feasible_count() == 8 * 12

    def test_fewer_tx_levels(self):
        space = DesignSpace(tx_levels_dbm=(0.0,))
        assert space.feasible_count() == 110 * 4
