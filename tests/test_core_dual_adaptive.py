"""Tests for the dual (max-reliability) explorer and adaptive replication."""

import pytest

from repro.core.design_space import DesignSpace, PlacementConstraints
from repro.core.evaluator import SimulationOracle
from repro.core.explorer import DualExplorationResult, HumanIntranetExplorer
from repro.core.problem import DesignProblem, ScenarioParameters
from repro.core.design_space import Configuration
from repro.library.mac_options import MacKind, RoutingKind


def tiny_problem(tsim=4.0, seed=0, **scenario_kwargs):
    scenario_kwargs.setdefault("replicates", 1)
    return DesignProblem(
        pdr_min=0.5,
        scenario=ScenarioParameters(
            tsim_s=tsim, seed=seed, **scenario_kwargs
        ),
        space=DesignSpace(
            constraints=PlacementConstraints(max_nodes=4),
            tx_levels_dbm=(-10.0, 0.0),
        ),
    )


class TestDualExplorer:
    def test_finds_solution_within_budget(self):
        problem = tiny_problem()
        explorer = HumanIntranetExplorer(problem, candidate_cap=8)
        result = explorer.explore_max_reliability(min_lifetime_days=20.0)
        assert result.found
        assert result.best.nlt_days >= 20.0
        assert result.best.power_mw <= result.max_power_mw + 1e-9

    def test_budget_mapping(self):
        problem = tiny_problem()
        explorer = HumanIntranetExplorer(problem)
        result = explorer.explore_max_reliability(min_lifetime_days=27.0)
        battery = problem.scenario.battery
        assert result.max_power_mw == pytest.approx(
            battery.energy_mwh / (27.0 * 24.0)
        )

    def test_impossible_budget_infeasible(self):
        problem = tiny_problem()
        explorer = HumanIntranetExplorer(problem, candidate_cap=8)
        # A 10-year lifetime is below even the baseline power draw.
        result = explorer.explore_max_reliability(min_lifetime_days=3650.0)
        assert not result.found
        assert "infeasible" in result.summary()

    def test_looser_budget_monotone_reliability(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        explorer = HumanIntranetExplorer(problem, oracle=oracle,
                                         candidate_cap=8)
        tight = explorer.explore_max_reliability(30.0)
        loose = explorer.explore_max_reliability(10.0)
        assert tight.found and loose.found
        assert loose.best.pdr >= tight.best.pdr - 1e-9

    def test_validation(self):
        problem = tiny_problem()
        explorer = HumanIntranetExplorer(problem)
        with pytest.raises(ValueError):
            explorer.explore_max_reliability(min_lifetime_days=0.0)

    def test_best_maximizes_pdr_among_budgeted(self):
        problem = tiny_problem()
        explorer = HumanIntranetExplorer(problem, candidate_cap=8)
        result = explorer.explore_max_reliability(15.0)
        within = [
            e for e in result.evaluations
            if e.power_mw <= result.max_power_mw + 1e-12
        ]
        assert result.best.pdr == max(e.pdr for e in within)


class TestAdaptiveOracle:
    def make_oracle(self, **kwargs):
        problem = tiny_problem(
            adaptive_replicates=True, replicates=2, **kwargs
        )
        return SimulationOracle(problem.scenario)

    def config(self):
        return Configuration((0, 1, 3, 6), -10.0, MacKind.TDMA,
                             RoutingKind.STAR)

    def test_adaptive_runs_at_least_minimum(self):
        oracle = self.make_oracle(pdr_epsilon=0.5, max_replicates=8)
        record = oracle.evaluate(self.config())
        assert record.outcome.replicates >= 2

    def test_tight_epsilon_uses_more_replicates(self):
        loose = self.make_oracle(pdr_epsilon=0.5, max_replicates=8)
        tight = self.make_oracle(pdr_epsilon=0.001, max_replicates=8)
        config = self.config()
        n_loose = loose.evaluate(config).outcome.replicates
        n_tight = tight.evaluate(config).outcome.replicates
        assert n_tight >= n_loose

    def test_budget_cap_respected(self):
        oracle = self.make_oracle(pdr_epsilon=1e-6, max_replicates=4)
        record = oracle.evaluate(self.config())
        assert record.outcome.replicates == 4

    def test_adaptive_deterministic(self):
        a = self.make_oracle(pdr_epsilon=0.02, max_replicates=6)
        b = self.make_oracle(pdr_epsilon=0.02, max_replicates=6)
        ra = a.evaluate(self.config())
        rb = b.evaluate(self.config())
        assert ra.pdr == rb.pdr
        assert ra.outcome.replicates == rb.outcome.replicates

    def test_adaptive_mean_matches_fixed_protocol_prefix(self):
        """The adaptive estimate over k replicates equals the fixed
        k-replicate average (same streams, same averaging)."""
        adaptive = self.make_oracle(pdr_epsilon=1e-9, max_replicates=3)
        record = adaptive.evaluate(self.config())
        assert record.outcome.replicates == 3

        fixed_problem = tiny_problem(replicates=3)
        fixed = SimulationOracle(fixed_problem.scenario)
        fixed_record = fixed.evaluate(self.config())
        assert record.pdr == pytest.approx(fixed_record.pdr)


class TestDualResultApi:
    def test_summary_formats(self):
        result = DualExplorationResult(
            min_lifetime_days=10.0, max_power_mw=2.8, best=None
        )
        assert not result.found
        assert "infeasible" in result.summary()
