"""Tests for the simulation oracle and Algorithm 1.

These use heavily reduced scenarios (short horizons, small spaces) so that
each test runs in seconds while still exercising the real pipeline
end to end.
"""

import pytest

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.core.design_space import Configuration, DesignSpace, PlacementConstraints
from repro.core.evaluator import SimulationOracle
from repro.core.explorer import HumanIntranetExplorer
from repro.core.problem import DesignProblem, ScenarioParameters
from repro.library.mac_options import MacKind, RoutingKind


def tiny_problem(pdr_min=0.5, tsim=4.0, tx_levels=(-10.0, 0.0), max_nodes=4,
                 seed=0, routing_kinds=None):
    """A reduced problem (8 placements at max_nodes=4; tx_levels and
    routing_kinds trim the grid further) so tests run in seconds."""
    space_kwargs = dict(
        constraints=PlacementConstraints(max_nodes=max_nodes),
        tx_levels_dbm=tx_levels,
    )
    if routing_kinds is not None:
        space_kwargs["routing_kinds"] = routing_kinds
    return DesignProblem(
        pdr_min=pdr_min,
        scenario=ScenarioParameters(tsim_s=tsim, replicates=1, seed=seed),
        space=DesignSpace(**space_kwargs),
    )


class TestOracle:
    def test_cache_hit_on_repeat(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        config = next(iter(problem.space.feasible_configurations()))
        first = oracle.evaluate(config)
        second = oracle.evaluate(config)
        assert first is second
        assert oracle.simulations_run == 1
        assert oracle.cache_hits == 1

    def test_distinct_configs_counted(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        configs = list(problem.space.feasible_configurations())[:3]
        oracle.evaluate_many(configs)
        assert oracle.simulations_run == 3
        assert len(oracle.all_records) == 3

    def test_record_fields_sane(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        record = oracle.evaluate(
            Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA, RoutingKind.STAR)
        )
        assert 0.0 <= record.pdr <= 1.0
        assert record.power_mw > 0
        assert record.nlt_days > 0
        assert record.wall_seconds > 0
        assert record.pdr_percent == pytest.approx(100 * record.pdr)

    def test_record_for_lookup(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        config = Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA,
                               RoutingKind.STAR)
        assert oracle.record_for(config) is None
        record = oracle.evaluate(config)
        assert oracle.record_for(config) is record

    def test_reset_counters_keeps_cache(self):
        problem = tiny_problem()
        oracle = SimulationOracle(problem.scenario)
        config = next(iter(problem.space.feasible_configurations()))
        oracle.evaluate(config)
        oracle.reset_counters()
        assert oracle.simulations_run == 0
        oracle.evaluate(config)
        assert oracle.simulations_run == 0  # served from cache


class TestExplorer:
    def test_finds_feasible_solution(self):
        problem = tiny_problem(pdr_min=0.5)
        result = HumanIntranetExplorer(problem).explore()
        assert result.status == "optimal"
        assert result.best is not None
        assert result.best.pdr >= 0.5
        assert result.simulations_run > 0

    def test_impossible_bound_infeasible(self):
        # Demand 100% delivery from star-only routing at -20 dBm, where
        # the ankle links are ~9 dB below the budget on average: no
        # configuration can deliver everything.
        problem = tiny_problem(
            pdr_min=1.0, tx_levels=(-20.0,),
            routing_kinds=(RoutingKind.STAR,),
        )
        result = HumanIntranetExplorer(problem).explore()
        assert result.status == "infeasible"
        assert result.best is None
        assert result.termination_reason == "milp_infeasible"

    def test_matches_exhaustive_ground_truth(self):
        """Algorithm 1 must return the exhaustive optimum on the same
        oracle (the paper's exactness claim)."""
        problem = tiny_problem(pdr_min=0.6, tsim=3.0)
        oracle = SimulationOracle(problem.scenario)
        exhaustive = ExhaustiveSearch(problem, oracle=oracle).search()
        explorer_result = HumanIntranetExplorer(problem, oracle=oracle).explore()
        assert exhaustive.best is not None
        assert explorer_result.best is not None
        assert explorer_result.best.power_mw <= exhaustive.best.power_mw + 1e-9

    def test_uses_fewer_simulations_than_exhaustive(self):
        problem = tiny_problem(pdr_min=0.5)
        oracle = SimulationOracle(problem.scenario)
        result = HumanIntranetExplorer(problem, oracle=oracle).explore()
        assert result.simulations_run < problem.space.feasible_count()

    def test_candidate_cap_limits_batch(self):
        problem = tiny_problem(pdr_min=0.5)
        result = HumanIntranetExplorer(problem, candidate_cap=4).explore()
        assert all(it.num_candidates <= 4 for it in result.iterations)

    def test_iteration_journal_structure(self):
        problem = tiny_problem(pdr_min=0.5)
        result = HumanIntranetExplorer(problem).explore()
        assert result.iterations
        first = result.iterations[0]
        assert first.index == 0
        assert first.analytic_power_mw > 0
        assert len(first.evaluations) == first.num_candidates
        assert result.summary().startswith("PDRmin=")

    def test_exhaustive_sweep_visits_all_levels(self):
        problem = tiny_problem(pdr_min=0.5)
        explorer = HumanIntranetExplorer(problem)
        result = explorer.sweep()
        levels = [it.analytic_power_mw for it in result.iterations]
        expected = explorer.formulation.distinct_power_levels_mw()
        assert levels == expected

    def test_alpha_disabled_may_terminate_earlier(self):
        problem = tiny_problem(pdr_min=0.5)
        with_alpha = HumanIntranetExplorer(problem).explore()
        without_alpha = HumanIntranetExplorer(
            problem, use_alpha=False
        ).explore()
        assert without_alpha.simulations_run <= with_alpha.simulations_run

    def test_deterministic_given_seed(self):
        problem = tiny_problem(pdr_min=0.6)
        a = HumanIntranetExplorer(problem).explore()
        b = HumanIntranetExplorer(problem).explore()
        assert a.best is not None and b.best is not None
        assert a.best.config.key() == b.best.config.key()
        assert a.simulations_run == b.simulations_run

    def test_shared_oracle_amortizes_runs(self):
        problem = tiny_problem(pdr_min=0.5)
        oracle = SimulationOracle(problem.scenario)
        first = HumanIntranetExplorer(problem, oracle=oracle).explore()
        second = HumanIntranetExplorer(
            problem.with_pdr_min(0.6), oracle=oracle
        ).explore()
        # The second run re-visits the same first levels: cached.
        assert second.simulations_run <= first.simulations_run

    def test_summary_for_infeasible(self):
        problem = tiny_problem(
            pdr_min=1.0, tx_levels=(-20.0,),
            routing_kinds=(RoutingKind.STAR,),
        )
        result = HumanIntranetExplorer(problem).explore()
        assert "infeasible" in result.summary()


class TestExhaustiveBaseline:
    def test_search_covers_space(self):
        problem = tiny_problem(pdr_min=0.5, tsim=2.0)
        search = ExhaustiveSearch(problem)
        result = search.search()
        assert result.simulations_run == problem.space.feasible_count()
        assert len(result.evaluations) == result.simulations_run

    def test_required_simulations_without_running(self):
        problem = tiny_problem()
        search = ExhaustiveSearch(problem)
        assert search.required_simulations() == problem.space.feasible_count()
        assert search.oracle.simulations_run == 0

    def test_limit_caps_work(self):
        problem = tiny_problem(tsim=2.0)
        result = ExhaustiveSearch(problem).search(limit=5)
        assert result.simulations_run == 5

    def test_best_is_feasible_minimum_power(self):
        problem = tiny_problem(pdr_min=0.5, tsim=3.0)
        result = ExhaustiveSearch(problem).search()
        assert result.best is not None
        feasible = result.feasible
        assert result.best.power_mw == min(e.power_mw for e in feasible)


class TestJournalExport:
    def test_to_dict_is_json_serializable(self):
        import json

        problem = tiny_problem(pdr_min=0.5)
        result = HumanIntranetExplorer(problem, candidate_cap=4).explore()
        payload = result.to_dict()
        text = json.dumps(payload)
        assert payload["status"] == "optimal"
        assert payload["best"]["routing"] in ("star", "mesh")
        assert payload["iterations"]
        first = payload["iterations"][0]
        assert first["num_candidates"] == len(first["evaluations"])
        assert "placement" in first["evaluations"][0]
        assert isinstance(text, str)

    def test_to_dict_infeasible_run(self):
        problem = tiny_problem(
            pdr_min=1.0, tx_levels=(-20.0,),
            routing_kinds=(RoutingKind.STAR,),
        )
        result = HumanIntranetExplorer(problem).explore()
        payload = result.to_dict()
        assert payload["best"] is None
        assert payload["status"] == "infeasible"
