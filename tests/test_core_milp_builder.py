"""Tests for the MILP formulation of P̃ (candidate generation)."""

import pytest

from repro.core.design_space import DesignSpace, PlacementConstraints
from repro.core.milp_builder import MilpFormulation
from repro.core.problem import DesignProblem, ScenarioParameters
from repro.library.mac_options import MacKind, RoutingKind
from repro.milp import SolveStatus


def make_formulation(max_nodes=6, tx_levels=(-20.0, -10.0, 0.0)):
    problem = DesignProblem(
        pdr_min=0.9,
        scenario=ScenarioParameters(tsim_s=5.0, replicates=1),
        space=DesignSpace(
            constraints=PlacementConstraints(max_nodes=max_nodes),
            tx_levels_dbm=tx_levels,
        ),
    )
    return MilpFormulation(problem), problem


class TestCostTable:
    def test_cost_table_matches_power_model(self):
        formulation, problem = make_formulation()
        model = problem.scenario.power_model()
        for (routing_value, k, n), cost in formulation._cost_table.items():
            routing = problem.scenario.routing_options(
                RoutingKind(routing_value)
            )
            mode = problem.scenario.tx_mode(problem.space.tx_levels_dbm[k])
            assert cost == pytest.approx(model.radio_power_mw(routing, n, mode))

    def test_distinct_levels_sorted(self):
        formulation, _ = make_formulation()
        levels = formulation.distinct_power_levels_mw()
        assert levels == sorted(levels)
        assert len(set(levels)) == len(levels)

    def test_cut_epsilon_below_min_gap(self):
        formulation, _ = make_formulation()
        levels = formulation.distinct_power_levels_mw()
        min_gap = min(b - a for a, b in zip(levels, levels[1:]))
        assert 0 < formulation.cut_epsilon_mw < min_gap


class TestFirstLevel:
    def test_global_optimum_is_min_star_low_power(self):
        formulation, problem = make_formulation()
        status, configs, p_star = formulation.enumerate_candidates()
        assert status is SolveStatus.OPTIMAL
        expected = min(
            problem.analytic_power_mw(c)
            for c in problem.space.feasible_configurations()
        )
        assert p_star == pytest.approx(expected)
        assert all(c.routing is RoutingKind.STAR for c in configs)
        assert all(c.tx_dbm == -20.0 for c in configs)
        assert all(c.num_nodes == 4 for c in configs)

    def test_optimum_set_contains_both_macs(self):
        formulation, _ = make_formulation(max_nodes=4)
        _status, configs, _p = formulation.enumerate_candidates()
        macs = {c.mac for c in configs}
        assert macs == {MacKind.CSMA, MacKind.TDMA}

    def test_optimum_set_covers_all_minimal_placements(self):
        formulation, _ = make_formulation(max_nodes=4)
        _status, configs, _p = formulation.enumerate_candidates(
            max_solutions=64
        )
        placements = {c.placement for c in configs}
        assert len(placements) == 8  # 2 hips x 2 ankles x 2 wrists
        assert len(configs) == 16  # x 2 MACs

    def test_all_candidates_on_grid(self):
        formulation, problem = make_formulation()
        _status, configs, _p = formulation.enumerate_candidates()
        assert all(problem.space.contains(c) for c in configs)

    def test_max_solutions_respected(self):
        formulation, _ = make_formulation()
        _status, configs, _p = formulation.enumerate_candidates(max_solutions=5)
        assert len(configs) == 5


class TestCuts:
    def test_cuts_walk_levels_in_order(self):
        formulation, _ = make_formulation(max_nodes=4)
        cuts, seen = [], []
        while True:
            status, configs, p_star = formulation.enumerate_candidates(cuts)
            if status is not SolveStatus.OPTIMAL or not configs:
                break
            seen.append(p_star)
            cuts.append(p_star)
        # 2 routings x 3 levels x 1 node count = 6 distinct levels.
        assert len(seen) == 6
        assert seen == sorted(seen)
        assert seen == formulation.distinct_power_levels_mw()

    def test_exhausted_space_reports_infeasible(self):
        formulation, _ = make_formulation(max_nodes=4)
        levels = formulation.distinct_power_levels_mw()
        status, configs, p_star = formulation.enumerate_candidates(levels)
        assert status is SolveStatus.INFEASIBLE
        assert configs == [] and p_star is None

    def test_only_binding_cut_matters(self):
        formulation, _ = make_formulation()
        levels = formulation.distinct_power_levels_mw()
        one = formulation.enumerate_candidates([levels[2]])
        many = formulation.enumerate_candidates(levels[:3])
        assert one[2] == pytest.approx(many[2])


class TestNogoodEquivalence:
    def test_combo_equals_nogood_on_reduced_space(self):
        formulation, _ = make_formulation(
            max_nodes=4, tx_levels=(-10.0, 0.0)
        )
        for cuts in ([], [1.02]):
            _s1, combo, p1 = formulation.enumerate_candidates(
                cuts, max_solutions=64, method="combo"
            )
            _s2, nogood, p2 = formulation.enumerate_candidates(
                cuts, max_solutions=64, method="nogood"
            )
            assert p1 == pytest.approx(p2)
            assert {c.key() for c in combo} == {c.key() for c in nogood}

    def test_unknown_method_rejected(self):
        formulation, _ = make_formulation()
        with pytest.raises(ValueError, match="unknown enumeration method"):
            formulation.enumerate_candidates(method="magic")


class TestProblemValidation:
    def test_pdr_min_range_checked(self):
        with pytest.raises(ValueError):
            DesignProblem(pdr_min=1.5)
        with pytest.raises(ValueError):
            DesignProblem(pdr_min=-0.1)

    def test_coordinator_must_be_required(self):
        space = DesignSpace(
            constraints=PlacementConstraints(required=(1,))
        )
        with pytest.raises(ValueError, match="coordinator"):
            DesignProblem(pdr_min=0.5, space=space)

    def test_tx_levels_must_exist_on_radio(self):
        space = DesignSpace(tx_levels_dbm=(-20.0, 7.0))
        with pytest.raises(KeyError):
            DesignProblem(pdr_min=0.5, space=space)

    def test_with_pdr_min(self):
        problem = DesignProblem(pdr_min=0.5)
        other = problem.with_pdr_min(0.9)
        assert other.pdr_min == 0.9
        assert other.scenario is problem.scenario

    def test_analytic_helpers(self):
        problem = DesignProblem(pdr_min=0.5)
        from repro.core.design_space import Configuration

        c = Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA, RoutingKind.STAR)
        power = problem.analytic_power_mw(c)
        assert power > 0
        assert problem.analytic_lifetime_days(c) == pytest.approx(
            problem.scenario.battery.lifetime_days(power)
        )
