"""Tests for the coarse analytical power model (Eqs. 3, 4, 5, 9) and α."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.power_model import CoarsePowerModel
from repro.library.batteries import CR2032
from repro.library.mac_options import RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters

MODEL = CoarsePowerModel(CC2650, AppParameters(), CR2032)
STAR = RoutingOptions(kind=RoutingKind.STAR, coordinator=0)
MESH = RoutingOptions(kind=RoutingKind.MESH, max_hops=2)
P3 = CC2650.tx_mode_by_dbm(0.0)
P2 = CC2650.tx_mode_by_dbm(-10.0)
P1 = CC2650.tx_mode_by_dbm(-20.0)


class TestEquations:
    def test_packet_airtime(self):
        assert MODEL.packet_airtime_s == pytest.approx(800 / 1024e3)

    def test_eq5_star(self):
        """Star: P_rd = phi * Tpkt * (TxmW + 2(N-1) RxmW)."""
        n = 4
        expected = 10.0 * (800 / 1024e3) * (18.3 + 2 * 3 * 17.7)
        assert MODEL.radio_power_mw(STAR, n, P3) == pytest.approx(expected)

    def test_eq5_mesh(self):
        """Mesh: P_rd = phi * Tpkt * NreTx * (TxmW + (N-1) RxmW)."""
        n = 5
        nretx = n * n - 4 * n + 5
        expected = 10.0 * (800 / 1024e3) * nretx * (18.3 + 4 * 17.7)
        assert MODEL.radio_power_mw(MESH, n, P3) == pytest.approx(expected)

    def test_eq9_adds_baseline(self):
        assert MODEL.node_power_mw(STAR, 4, P3) == pytest.approx(
            0.1 + MODEL.radio_power_mw(STAR, 4, P3)
        )

    def test_eq4_lifetime(self):
        p_bar = MODEL.node_power_mw(STAR, 4, P2)
        assert MODEL.lifetime_days(STAR, 4, P2) == pytest.approx(
            CR2032.lifetime_days(p_bar)
        )

    def test_star_lifetime_about_a_month(self):
        """Sanity anchor from the paper's Fig. 3: a 4-node star at reduced
        TX power lives for roughly a month on a CR2032."""
        days = MODEL.lifetime_days(STAR, 4, P2)
        assert 20 < days < 40

    def test_mesh_5node_lifetime_days_scale(self):
        """The paper's 5-node mesh at 0 dBm lives 'a couple of days'
        (ours: single-digit days)."""
        days = MODEL.lifetime_days(MESH, 5, P3)
        assert 1 < days < 10

    def test_two_nodes_minimum(self):
        with pytest.raises(ValueError):
            MODEL.radio_power_mw(STAR, 1, P3)


class TestMonotonicity:
    def test_power_increases_with_tx_level(self):
        assert (
            MODEL.node_power_mw(STAR, 4, P1)
            < MODEL.node_power_mw(STAR, 4, P2)
            < MODEL.node_power_mw(STAR, 4, P3)
        )

    def test_power_increases_with_node_count(self):
        for routing in (STAR, MESH):
            values = [MODEL.node_power_mw(routing, n, P3) for n in (4, 5, 6)]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_mesh_costs_more_than_star(self):
        for n in (4, 5, 6):
            assert MODEL.node_power_mw(MESH, n, P3) > MODEL.node_power_mw(
                STAR, n, P3
            )


class TestAlpha:
    def test_alpha_at_full_reliability_is_one(self):
        p_bar = MODEL.node_power_mw(STAR, 4, P3)
        assert MODEL.alpha(p_bar, 1.0) == pytest.approx(1.0)

    def test_lower_bound_interpolates_radio_part(self):
        p_bar = MODEL.node_power_mw(STAR, 4, P3)
        lb = MODEL.power_lower_bound_mw(p_bar, 0.5)
        assert lb == pytest.approx(0.1 + 0.5 * (p_bar - 0.1))

    def test_lower_bound_at_zero_pdr_is_baseline(self):
        p_bar = MODEL.node_power_mw(MESH, 5, P3)
        assert MODEL.power_lower_bound_mw(p_bar, 0.0) == pytest.approx(0.1)

    def test_alpha_at_least_one(self):
        p_bar = MODEL.node_power_mw(MESH, 6, P3)
        for pdr_min in (0.1, 0.5, 0.9, 1.0):
            assert MODEL.alpha(p_bar, pdr_min) >= 1.0

    def test_invalid_pdr_rejected(self):
        with pytest.raises(ValueError):
            MODEL.power_lower_bound_mw(1.0, 1.5)

    @given(pdr=st.floats(0.01, 1.0))
    def test_bound_below_p_bar(self, pdr):
        p_bar = MODEL.node_power_mw(MESH, 5, P2)
        lb = MODEL.power_lower_bound_mw(p_bar, pdr)
        assert 0.1 <= lb <= p_bar + 1e-12

    @given(
        pdr_low=st.floats(0.0, 1.0),
        pdr_high=st.floats(0.0, 1.0),
    )
    def test_bound_monotone_in_pdr(self, pdr_low, pdr_high):
        if pdr_low > pdr_high:
            pdr_low, pdr_high = pdr_high, pdr_low
        p_bar = MODEL.node_power_mw(STAR, 5, P3)
        assert MODEL.power_lower_bound_mw(
            p_bar, pdr_low
        ) <= MODEL.power_lower_bound_mw(p_bar, pdr_high) + 1e-12
