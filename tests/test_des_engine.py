"""Tests for the discrete-event simulation kernel."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_priority_overrides_fifo_at_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late", priority=5)
        sim.schedule(1.0, order.append, "early", priority=-5)
        sim.run()
        assert order == ["early", "late"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_non_finite_time_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(math.inf, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        times = []

        def chain(n):
            times.append(sim.now)
            if n > 0:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert times == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []
        assert not event.pending

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.run()
        event.cancel()
        assert fired == ["x"]

    def test_pending_count_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count == 1
        del keep


class TestRunControl:
    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_execute_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "in")
        sim.schedule(15.0, fired.append, "out")
        sim.run(until=10.0)
        assert fired == ["in"]
        assert sim.pending_count == 1

    def test_remaining_events_run_on_next_call(self):
        sim = Simulator()
        fired = []
        sim.schedule(15.0, fired.append, "late")
        sim.run(until=10.0)
        sim.run(until=20.0)
        assert fired == ["late"]

    def test_max_events_budget(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), count.append, i)
        sim.run(max_events=4)
        assert len(count) == 4

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestDeterminism:
    @given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
    def test_execution_order_is_sorted_and_stable(self, delays):
        sim = Simulator()
        record = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, record.append, (delay, index))
        sim.run()
        assert record == sorted(record, key=lambda p: (p[0], p[1]))
