"""Tests for generator-based processes and waiters."""

import pytest

from repro.des.engine import Simulator
from repro.des.process import Process, Timeout, Waiter, all_processes_dead


class TestTimeouts:
    def test_simple_sleep_sequence(self):
        sim = Simulator()
        times = []

        def worker():
            times.append(sim.now)
            yield Timeout(1.5)
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        Process(sim, worker())
        sim.run()
        assert times == [0.0, 1.5, 4.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_zero_timeout_resumes_same_time(self):
        sim = Simulator()
        times = []

        def worker():
            yield Timeout(0.0)
            times.append(sim.now)

        Process(sim, worker())
        sim.run()
        assert times == [0.0]

    def test_process_finishes_and_dies(self):
        sim = Simulator()

        def worker():
            yield Timeout(1.0)

        p = Process(sim, worker())
        sim.run()
        assert not p.alive

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield Timeout(period)
                log.append((sim.now, name))

        Process(sim, ticker("fast", 1.0))
        Process(sim, ticker("slow", 1.5))
        sim.run()
        # At t = 3.0 both are due; the slow ticker scheduled its timer
        # earlier (at t = 1.5 vs t = 2.0), so FIFO runs it first.
        assert log == [
            (1.0, "fast"),
            (1.5, "slow"),
            (2.0, "fast"),
            (3.0, "slow"),
            (3.0, "fast"),
            (4.5, "slow"),
        ]


class TestWaiters:
    def test_trigger_wakes_process_with_value(self):
        sim = Simulator()
        waiter = Waiter(sim)
        received = []

        def consumer():
            value = yield waiter
            received.append((sim.now, value))

        Process(sim, consumer())
        sim.schedule(2.0, waiter.trigger, "payload")
        sim.run()
        assert received == [(2.0, "payload")]

    def test_trigger_before_wait_not_lost(self):
        sim = Simulator()
        waiter = Waiter(sim)
        waiter.trigger("early")
        received = []

        def consumer():
            value = yield waiter
            received.append(value)

        Process(sim, consumer())
        sim.run()
        assert received == ["early"]

    def test_trigger_idempotent(self):
        sim = Simulator()
        waiter = Waiter(sim)
        received = []

        def consumer():
            received.append((yield waiter))

        Process(sim, consumer())
        sim.schedule(1.0, waiter.trigger, "first")
        sim.schedule(2.0, waiter.trigger, "second")
        sim.run()
        assert received == ["first"]
        assert waiter.triggered


class TestInterrupt:
    def test_interrupt_stops_process(self):
        sim = Simulator()
        ticks = []

        def worker():
            while True:
                yield Timeout(1.0)
                ticks.append(sim.now)

        p = Process(sim, worker())
        sim.schedule(3.5, p.interrupt)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert not p.alive

    def test_interrupt_twice_is_noop(self):
        sim = Simulator()

        def worker():
            yield Timeout(10.0)

        p = Process(sim, worker())
        p.interrupt()
        p.interrupt()
        sim.run()
        assert not p.alive


class TestErrors:
    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def worker():
            yield 42  # not a Timeout/Waiter

        Process(sim, worker())
        with pytest.raises(TypeError, match="yielded"):
            sim.run()

    def test_all_processes_dead(self):
        sim = Simulator()

        def quick():
            yield Timeout(0.5)

        procs = [Process(sim, quick()) for _ in range(3)]
        assert not all_processes_dead(procs)
        sim.run()
        assert all_processes_dead(procs)
