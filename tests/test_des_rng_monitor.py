"""Tests for random streams and measurement primitives."""

import pytest

from repro.des.monitor import (
    Counter,
    TimeWeightedValue,
    TraceLog,
    merge_traces,
    summarize_counters,
)
from repro.des.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_name_reproducible(self):
        a = RngStreams(seed=42).stream("fading/0-1").normal(size=5)
        b = RngStreams(seed=42).stream("fading/0-1").normal(size=5)
        assert (a == b).all()

    def test_different_names_independent(self):
        rng = RngStreams(seed=42)
        a = rng.stream("a").normal(size=5)
        b = rng.stream("b").normal(size=5)
        assert not (a == b).all()

    def test_different_replicates_disjoint(self):
        a = RngStreams(seed=42, replicate=0).stream("x").normal(size=5)
        b = RngStreams(seed=42, replicate=1).stream("x").normal(size=5)
        assert not (a == b).all()

    def test_different_seeds_disjoint(self):
        a = RngStreams(seed=1).stream("x").normal(size=5)
        b = RngStreams(seed=2).stream("x").normal(size=5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        rng = RngStreams(seed=0)
        assert rng.stream("s") is rng.stream("s")

    def test_adding_consumers_does_not_perturb_existing(self):
        rng1 = RngStreams(seed=7)
        first_draws = rng1.stream("alpha").normal(size=3)

        rng2 = RngStreams(seed=7)
        rng2.stream("brand-new-consumer").normal(size=10)
        second_draws = rng2.stream("alpha").normal(size=3)
        assert (first_draws == second_draws).all()

    def test_scalar_helpers(self):
        rng = RngStreams(seed=0)
        u = rng.uniform("u", 2.0, 3.0)
        assert 2.0 <= u < 3.0
        assert rng.integers("i", 0, 5) in range(5)
        assert rng.exponential("e", mean=2.0) >= 0.0


class TestCounter:
    def test_increment_and_reset(self):
        c = Counter("tx")
        c.increment()
        c.increment(3)
        assert c.value == 4
        c.reset()
        assert c.value == 0

    def test_summarize(self):
        counters = {"a": Counter("a"), "b": Counter("b")}
        counters["a"].increment(2)
        assert summarize_counters(counters) == {"a": 2, "b": 0}


class TestTimeWeightedValue:
    def test_piecewise_average(self):
        tw = TimeWeightedValue("duty", initial=0.0)
        tw.update(2.0, 1.0)  # 0 for [0,2), 1 from t=2
        tw.update(5.0, 0.0)  # 1 for [2,5)
        assert tw.integral(10.0) == pytest.approx(3.0)
        assert tw.average(10.0) == pytest.approx(0.3)

    def test_time_going_backwards_rejected(self):
        tw = TimeWeightedValue("x")
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 0.0)

    def test_average_at_start_is_current(self):
        tw = TimeWeightedValue("x", initial=7.0, start_time=3.0)
        assert tw.average(3.0) == 7.0

    def test_current_value(self):
        tw = TimeWeightedValue("x")
        tw.update(1.0, 42.0)
        assert tw.current == 42.0


class TestTraceLog:
    def test_disabled_by_default_records_nothing(self):
        trace = TraceLog()
        trace.log(1.0, "tx", node=3)
        assert len(trace) == 0

    def test_enabled_records_and_filters(self):
        trace = TraceLog(enabled=True)
        trace.log(1.0, "tx", node=1)
        trace.log(2.0, "rx", node=2)
        trace.log(3.0, "tx", node=3)
        assert trace.count("tx") == 2
        assert [r.payload["node"] for r in trace.by_category("tx")] == [1, 3]

    def test_capacity_drops_counted(self):
        trace = TraceLog(enabled=True, capacity=2)
        for i in range(5):
            trace.log(float(i), "e")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = TraceLog(enabled=True)
        trace.log(1.0, "e")
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0

    def test_merge_traces_time_ordered(self):
        t1, t2 = TraceLog(enabled=True), TraceLog(enabled=True)
        t1.log(1.0, "a")
        t1.log(3.0, "c")
        t2.log(2.0, "b")
        merged = merge_traces([t1, t2])
        assert [r.category for r in merged] == ["a", "b", "c"]
