"""Tests for the experiment harnesses (presets, Table 1, Figure 3, R1, R2,
ablations) on the smoke preset so the suite stays fast."""

import pytest

from repro.experiments.annealing_cmp import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.reduction import format_reduction, run_reduction
from repro.experiments.scenario import (
    PRESETS,
    get_preset,
    make_problem,
    make_reduced_space,
    make_scenario,
    make_space,
)
from repro.experiments.table1 import format_table1, table1_rows
from repro.library.mac_options import RoutingKind


class TestPresets:
    def test_all_presets_constructible(self):
        for name in PRESETS:
            scenario = make_scenario(name)
            assert scenario.tsim_s > 0
            problem = make_problem(0.5, name)
            assert problem.pdr_min == 0.5

    def test_paper_preset_matches_section4(self):
        paper = get_preset("paper")
        assert paper.tsim_s == 600.0
        assert paper.replicates == 3

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown preset"):
            get_preset("gpu")

    def test_physics_identical_across_presets(self):
        assert make_space("paper").total_size == make_space("ci").total_size

    def test_reduced_space(self):
        space = make_reduced_space(max_nodes=4)
        assert space.placements_by_size() == [(4, 8)]


class TestTable1:
    def test_rows_cover_all_parameters(self):
        rows = table1_rows()
        params = {r["parameter"] for r in rows}
        assert {"fc", "BR", "RxdBm", "RxmW"} <= params
        assert {"Tx mode p1", "Tx mode p2", "Tx mode p3"} <= params

    def test_format_contains_paper_values(self):
        text = format_table1()
        for token in ("2.4 GHz", "1024 kbps", "-97", "17.7", "9.55",
                      "11.56", "18.3"):
            assert token in text, token


class TestFigure3Smoke:
    @pytest.fixture(scope="class")
    def data(self):
        return run_figure3(preset="smoke", seed=0)

    def test_scatter_nonempty_and_consistent(self, data):
        assert data.scatter
        assert data.total_simulations == len(data.scatter)
        for nlt, pdr, label in data.scatter_series():
            assert nlt > 0
            assert 0.0 <= pdr <= 100.0
            assert label

    def test_optima_exist_for_easy_bounds(self, data):
        best = data.optima[0.5]
        assert best is not None
        assert best.pdr >= 0.5

    def test_higher_bound_never_longer_lifetime(self, data):
        bounds = sorted(b for b, v in data.optima.items() if v is not None)
        lifetimes = [data.optima[b].nlt_days for b in bounds]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(lifetimes, lifetimes[1:])
        )

    def test_format_output(self, data):
        text = format_figure3(data)
        assert "Figure 3" in text
        assert "Optima per PDRmin" in text

    def test_optimum_routing_helper(self, data):
        routing = data.optimum_routing(0.5)
        assert routing is None or isinstance(routing, RoutingKind)


class TestReductionSmoke:
    def test_reduction_positive(self):
        data = run_reduction(preset="smoke", seed=0, pdr_mins=(0.5,))
        assert data.exhaustive_simulations == 1320
        assert data.algorithm_simulations[0.5] < 1320
        assert 0 < data.mean_reduction_percent <= 100
        text = format_reduction(data)
        assert "87%" in text  # the paper reference is cited in the output

    def test_empty_runs_rejected(self):
        data = run_reduction(preset="smoke", seed=0, pdr_mins=(0.5,))
        data.algorithm_simulations.clear()
        with pytest.raises(ValueError):
            _ = data.mean_reduction_percent


class TestAnnealingComparisonSmoke:
    def test_comparison_structure(self):
        data = run_annealing_comparison(
            preset="smoke", seed=0, pdr_mins=(0.5,), sa_steps=25
        )
        row = data.rows[0.5]
        assert row.alg1_simulations > 0
        assert row.sa_simulations > 0
        assert row.speedup == pytest.approx(
            row.sa_simulations / row.alg1_simulations
        )
        if row.sa_first_hit_simulations is not None:
            assert row.sa_first_hit_simulations <= row.sa_simulations
        assert data.mean_speedup > 0
        text = format_annealing_comparison(data)
        assert "speedup" in text
        assert "SA matched?" in text


class TestCli:
    def test_table1_command(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CC2650" in out

    def test_space_command(self, capsys):
        from repro.cli import main

        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "12288" in out

    def test_solve_command(self, capsys):
        from repro.cli import main

        assert main(["solve", "--pdr-min", "50", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "PDRmin=50%" in out

    def test_pdr_min_accepts_fraction(self, capsys):
        from repro.cli import main

        assert main(["solve", "--pdr-min", "0.5", "--preset", "smoke"]) == 0


class TestExtensionExperimentsSmoke:
    def test_routing_comparison(self):
        from repro.experiments.extensions import (
            format_routing_comparison,
            run_routing_comparison,
        )

        data = run_routing_comparison(preset="smoke", seed=0)
        assert len(data.rows) == 3
        for row in data.rows.values():
            assert 0.0 <= row.pdr <= 1.0
            assert row.power_mw > 0
        text = format_routing_comparison(data)
        assert "star" in text and "mesh" in text and "p2p" in text

    def test_posture_sensitivity(self):
        from repro.experiments.extensions import (
            format_posture_sensitivity,
            run_posture_sensitivity,
        )

        data = run_posture_sensitivity(preset="smoke", seed=0)
        assert len(data.rows) == 3
        text = format_posture_sensitivity(data)
        assert "activity" in text

    def test_dual_staircase(self):
        from repro.experiments.extensions import (
            format_dual_staircase,
            run_dual_staircase,
        )

        data = run_dual_staircase(
            preset="smoke", seed=0, lifetime_bounds_days=(25.0,)
        )
        assert 25.0 in data.results
        text = format_dual_staircase(data)
        assert "NLTmin" in text

    def test_cli_dual(self, capsys):
        from repro.cli import main

        code = main(["dual", "--min-lifetime-days", "25",
                     "--preset", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NLTmin=25.0" in out
