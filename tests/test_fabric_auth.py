"""Fabric authentication: unit tests for the HMAC scheme plus
wire-level tests proving the service rejects unauthenticated requests
*before any state mutation*.

The wire tests speak real HTTP against an ephemeral-port service, the
same way a worker (or an attacker) would.
"""

import asyncio
import json

import pytest

from repro.campaign.auth import (
    NONCE_HEADER,
    SIGNATURE_HEADER,
    TIMESTAMP_HEADER,
    AuthError,
    FabricAuth,
    resolve_secret,
)
from repro.campaign.service import CampaignService
from repro.campaign.wearer_cache import (
    WEARER_CACHE_DIRNAME,
    summary_crc,
)

SECRET = "test-fabric-secret"


def _fixed_auth(secret=SECRET, at=1000.0, window=60.0):
    return FabricAuth(secret, window_s=window, clock=lambda: at)


class TestFabricAuthUnit:
    def test_sign_verify_roundtrip(self):
        signer = _fixed_auth()
        verifier = _fixed_auth()
        headers = signer.sign("POST", "/fabric/sync", b'{"a":1}')
        verifier.verify("POST", "/fabric/sync", b'{"a":1}', headers)

    def test_missing_headers_is_401(self):
        verifier = _fixed_auth()
        with pytest.raises(AuthError) as err:
            verifier.verify("POST", "/fabric/sync", b"", {})
        assert err.value.status == 401

    def test_wrong_secret_is_401(self):
        headers = _fixed_auth("other-secret").sign("POST", "/p", b"x")
        with pytest.raises(AuthError) as err:
            _fixed_auth().verify("POST", "/p", b"x", headers)
        assert err.value.status == 401

    def test_tampered_body_is_401(self):
        signer = _fixed_auth()
        headers = signer.sign("POST", "/p", b"honest payload")
        with pytest.raises(AuthError) as err:
            _fixed_auth().verify("POST", "/p", b"evil payload", headers)
        assert err.value.status == 401

    def test_spliced_path_is_401(self):
        # a signature captured for one endpoint must not open another
        signer = _fixed_auth()
        headers = signer.sign("POST", "/fabric/sync", b"{}")
        with pytest.raises(AuthError) as err:
            _fixed_auth().verify(
                "POST", "/campaigns/x/leases", b"{}", headers
            )
        assert err.value.status == 401

    def test_stale_timestamp_is_403(self):
        # valid secret, but signed 2 windows ago → authenticated-but-
        # stale, the 403 side of the distinction
        headers = _fixed_auth(at=1000.0).sign("POST", "/p", b"")
        verifier = _fixed_auth(at=1130.0, window=60.0)
        with pytest.raises(AuthError) as err:
            verifier.verify("POST", "/p", b"", headers)
        assert err.value.status == 403

    def test_replayed_nonce_is_403(self):
        signer = _fixed_auth()
        verifier = _fixed_auth()
        headers = signer.sign("POST", "/p", b"")
        verifier.verify("POST", "/p", b"", headers)
        with pytest.raises(AuthError) as err:
            verifier.verify("POST", "/p", b"", headers)
        assert err.value.status == 403

    def test_nonce_expires_with_window(self):
        # the same nonce is acceptable again once the window has passed
        # (the signature itself is then stale, so re-acceptance needs a
        # fresh timestamp — simulate by re-signing with the same nonce)
        now = {"t": 1000.0}
        auth = FabricAuth(SECRET, window_s=10.0, clock=lambda: now["t"])
        headers = auth.sign("POST", "/p", b"")
        auth.verify("POST", "/p", b"", headers)
        now["t"] += 30.0
        fresh = dict(headers)
        fresh[TIMESTAMP_HEADER] = f"{now['t']:.3f}"
        fresh[SIGNATURE_HEADER] = auth.signature(
            "POST", "/p", b"", fresh[TIMESTAMP_HEADER],
            fresh[NONCE_HEADER],
        )
        auth.verify("POST", "/p", b"", fresh)

    def test_resolve_secret_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_FABRIC_SECRET", raising=False)
        assert resolve_secret(None) is None
        assert resolve_secret("flag") == "flag"
        monkeypatch.setenv("REPRO_FABRIC_SECRET", "env")
        assert resolve_secret(None) == "env"
        assert resolve_secret("flag") == "flag"  # the flag wins


async def _exchange(port, method, path, payload=None, headers=None):
    """One raw HTTP exchange with explicit extra headers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        extra = "".join(
            f"{k}: {v}\r\n" for k, v in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    return int(head_blob.split()[1]), json.loads(body_blob.decode())


def _signed(auth, method, path, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    return auth.sign(method, path, body)


class TestWireAuth:
    """Wire-level: with a secret configured, fabric requests without a
    valid fresh signature are rejected with zero state mutation."""

    def _summary_payload(self):
        summary = {
            "status": "infeasible",
            "best": None,
            "oracle_stats": {"simulations_run": 1, "cache_hits": 0},
        }
        return {"summary": summary, "crc": summary_crc(summary)}

    def test_unauthenticated_put_is_401_and_mutates_nothing(
        self, tmp_path
    ):
        async def scenario():
            service = CampaignService(tmp_path, fabric_secret=SECRET)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, err = await _exchange(
                    port, "PUT", "/cache/wearers/ab12",
                    self._summary_payload(),
                )
                assert status == 401
                assert "auth" in err["error"]
                # zero state mutation: no cache entry, no cache dir side
                # effects beyond what existed before
                cache_dir = tmp_path / WEARER_CACHE_DIRNAME
                assert not (cache_dir / "ab12.json").exists()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_bad_signature_is_401_good_signature_accepted(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, fabric_secret=SECRET)
            _, port = await service.start("127.0.0.1", 0)
            try:
                payload = self._summary_payload()
                wrong = FabricAuth("some-other-secret")
                status, _ = await _exchange(
                    port, "PUT", "/cache/wearers/ab12", payload,
                    headers=_signed(wrong, "PUT", "/cache/wearers/ab12",
                                    payload),
                )
                assert status == 401
                assert not (
                    tmp_path / WEARER_CACHE_DIRNAME / "ab12.json"
                ).exists()

                right = FabricAuth(SECRET)
                status, put = await _exchange(
                    port, "PUT", "/cache/wearers/ab12", payload,
                    headers=_signed(right, "PUT", "/cache/wearers/ab12",
                                    payload),
                )
                assert (status, put["stored"]) == (200, True)
                assert (
                    tmp_path / WEARER_CACHE_DIRNAME / "ab12.json"
                ).exists()

                # ...and a GET must be signed too
                status, _ = await _exchange(
                    port, "GET", "/cache/wearers/ab12"
                )
                assert status == 401
                status, got = await _exchange(
                    port, "GET", "/cache/wearers/ab12",
                    headers=_signed(right, "GET", "/cache/wearers/ab12"),
                )
                assert status == 200
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_replayed_request_is_403(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path, fabric_secret=SECRET)
            _, port = await service.start("127.0.0.1", 0)
            try:
                auth = FabricAuth(SECRET)
                body = {"worker": "w", "acquire": True, "heartbeats": []}
                headers = _signed(auth, "POST", "/fabric/sync", body)
                status, _ = await _exchange(
                    port, "POST", "/fabric/sync", body, headers=headers
                )
                assert status == 200
                # byte-identical resend: same nonce inside the window
                status, err = await _exchange(
                    port, "POST", "/fabric/sync", body, headers=headers
                )
                assert status == 403
                assert "replay" in err["error"]
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_stale_timestamp_is_403_on_the_wire(self, tmp_path):
        async def scenario():
            service = CampaignService(
                tmp_path, fabric_secret=SECRET, auth_window=1.0
            )
            _, port = await service.start("127.0.0.1", 0)
            try:
                import time as _time

                skewed = FabricAuth(
                    SECRET, clock=lambda: _time.time() - 300.0
                )
                body = {"worker": "w", "heartbeats": []}
                status, err = await _exchange(
                    port, "POST", "/fabric/sync", body,
                    headers=_signed(skewed, "POST", "/fabric/sync", body),
                )
                assert status == 403
                assert "window" in err["error"]
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_operator_plane_stays_open(self, tmp_path):
        # submission/status/result are deliberately unprotected (the
        # threat model protects worker-plane mutations; operators keep
        # curl) — and /healthz reports that auth is on
        async def scenario():
            service = CampaignService(tmp_path, fabric_secret=SECRET)
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, health = await _exchange(port, "GET", "/healthz")
                assert (status, health["auth"]) == (200, True)
                status, listing = await _exchange(
                    port, "GET", "/campaigns"
                )
                assert status == 200
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_legacy_mode_accepts_unsigned(self, tmp_path):
        async def scenario():
            service = CampaignService(tmp_path)  # no secret
            _, port = await service.start("127.0.0.1", 0)
            try:
                status, health = await _exchange(port, "GET", "/healthz")
                assert (status, health["auth"]) == (200, False)
                payload = self._summary_payload()
                status, put = await _exchange(
                    port, "PUT", "/cache/wearers/ab12", payload
                )
                assert (status, put["stored"]) == (200, True)
            finally:
                await service.stop()

        asyncio.run(scenario())
