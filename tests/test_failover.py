"""Coordinator failover: fencing epochs, warm-standby promotion, and
the deposed-primary 410 contract (DESIGN.md §14).

These are in-process tests — primary and standby are two
``CampaignService`` instances sharing one campaign root, exactly like
two coordinator processes sharing a filesystem.  The full
kill-the-primary chaos run lives in ``scripts/failover_smoke.py``.
"""

import asyncio
import json

from repro.campaign.queue import token_epoch
from repro.campaign.service import CampaignService
from repro.campaign.spec import make_population


async def _request(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    return int(head_blob.split()[1]), json.loads(body_blob.decode())


def _spec(size=3, base_seed=60, name="failover"):
    return make_population(
        size, preset="smoke", base_seed=base_seed, pdr_bounds=(90, 95),
        name=name,
    )


async def _submit_fleet(port, spec):
    status, sub = await _request(
        port, "POST", "/campaigns",
        {"spec": spec.to_dict(), "execution": "fleet"},
    )
    assert status == 202
    return sub["id"]


class TestFencingEpochs:
    def test_restart_readopts_epoch_new_node_bumps_it(self, tmp_path):
        async def scenario():
            alpha = CampaignService(tmp_path, node_name="alpha")
            assert alpha.epoch == 1
            await alpha.stop()

            # same node restarting is the PR 8 contract, not a failover:
            # outstanding e1 tokens must stay valid, so no bump
            alpha_again = CampaignService(tmp_path, node_name="alpha")
            assert alpha_again.epoch == 1
            await alpha_again.stop()

            # a *different* node claiming primacy always outranks
            gamma = CampaignService(tmp_path, node_name="gamma")
            assert gamma.epoch == 2
            await gamma.stop()

        asyncio.run(scenario())

    def test_promotion_fences_the_old_primary(self, tmp_path):
        async def scenario():
            primary = CampaignService(tmp_path, node_name="alpha")
            _, a_port = await primary.start("127.0.0.1", 0)
            standby = CampaignService(
                tmp_path,
                node_name="beta",
                standby_of=f"http://127.0.0.1:{a_port}",
            )
            _, b_port = await standby.start("127.0.0.1", 0)
            try:
                spec = _spec(name="fence")
                cid = await _submit_fleet(a_port, spec)

                # lease a shard on the old primary: its token carries
                # epoch 1
                status, sync = await _request(
                    a_port, "POST", "/fabric/sync", {"worker": "w1"}
                )
                assert status == 200
                old_lease = sync["lease"]
                assert token_epoch(old_lease["token"]) == 1

                # the standby refuses mutations while standing by...
                status, err = await _request(
                    b_port, "POST", "/fabric/sync", {"worker": "w1"}
                )
                assert (status, err["role"]) == (503, "standby")
                # ...but serves read-only status from the journal tail
                status, health = await _request(b_port, "GET", "/healthz")
                assert (status, health["role"]) == (200, "standby")
                status, view = await _request(
                    b_port, "GET", f"/campaigns/{cid}"
                )
                assert status == 200

                # promote: epoch bumps, the in-flight e1 lease survives
                status, promoted = await _request(
                    b_port, "POST", "/fabric/promote"
                )
                assert status == 200
                assert promoted["promoted"] is True
                assert promoted["epoch"] == 2
                status, beat = await _request(
                    b_port, "POST",
                    f"/campaigns/{cid}/leases/{old_lease['token']}"
                    "/heartbeat",
                )
                assert status == 200
                assert beat["shard"] == old_lease["shard"]

                # fresh grants from the new primary carry the new epoch
                status, sync = await _request(
                    b_port, "POST", "/fabric/sync", {"worker": "w2"}
                )
                assert status == 200
                assert token_epoch(sync["lease"]["token"]) == 2

                # the deposed primary now refuses every mutation with
                # 410/fenced — and mutates nothing while refusing
                queue_log = tmp_path / cid / "queue.jsonl"
                before = queue_log.read_bytes()
                status, err = await _request(
                    a_port, "POST", "/fabric/sync", {"worker": "w3"}
                )
                assert status == 410
                assert err["fenced"] is True
                assert queue_log.read_bytes() == before
                # once fenced, fenced for life — even for plain POSTs
                status, err = await _request(
                    a_port, "POST", f"/campaigns/{cid}/leases",
                    {"worker": "w3"},
                )
                assert (status, err["fenced"]) == (410, True)
            finally:
                await standby.stop()
                await primary.stop()

        asyncio.run(scenario())

    def test_promote_is_idempotent(self, tmp_path):
        async def scenario():
            primary = CampaignService(tmp_path, node_name="alpha")
            _, a_port = await primary.start("127.0.0.1", 0)
            standby = CampaignService(
                tmp_path, node_name="beta",
                standby_of=f"http://127.0.0.1:{a_port}",
            )
            _, b_port = await standby.start("127.0.0.1", 0)
            try:
                status, first = await _request(
                    b_port, "POST", "/fabric/promote"
                )
                assert (status, first["promoted"]) == (200, True)
                status, second = await _request(
                    b_port, "POST", "/fabric/promote"
                )
                assert (status, second["promoted"]) == (200, False)
                assert second["epoch"] == first["epoch"]
            finally:
                await standby.stop()
                await primary.stop()

        asyncio.run(scenario())


class TestAutoPromotion:
    def test_standby_promotes_after_missed_pings(self, tmp_path):
        async def scenario():
            primary = CampaignService(tmp_path, node_name="alpha")
            _, a_port = await primary.start("127.0.0.1", 0)
            standby = CampaignService(
                tmp_path,
                node_name="beta",
                standby_of=f"http://127.0.0.1:{a_port}",
                ping_interval=0.05,
                ping_misses=2,
            )
            _, b_port = await standby.start("127.0.0.1", 0)
            try:
                spec = _spec(name="autopromote", base_seed=61)
                cid = await _submit_fleet(a_port, spec)

                # primary healthy → the standby must hold its fire
                await asyncio.sleep(0.3)
                assert standby.role == "standby"

                await primary.stop()  # SIGKILL stand-in

                for _ in range(200):
                    if standby.role == "primary":
                        break
                    await asyncio.sleep(0.05)
                assert standby.role == "primary"
                assert standby.epoch == 2

                # the promoted standby owns the campaign: it grants
                # leases for the shards the dead primary left behind
                status, sync = await _request(
                    b_port, "POST", "/fabric/sync", {"worker": "w1"}
                )
                assert status == 200
                assert sync["campaign"] == cid
                assert token_epoch(sync["lease"]["token"]) == 2
            finally:
                await standby.stop()
                await primary.stop()

        asyncio.run(scenario())
