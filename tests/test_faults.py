"""Fault model + injector: validation, determinism, simulated behaviour.

The behavioural tests run single smoke-preset replicates (8 s of
simulated time) through :func:`run_configuration_outcome` with a fault
scenario attached, asserting the *direction* of each fault's effect —
node death and link blackout reduce PDR, hub outages dent the windowed
PDR and then recover, battery drain shortens lifetime — plus the two
invariants everything else rests on: injection is deterministic, and an
inapplicable fault changes nothing.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.core.design_space import Configuration
from repro.core.parallel import run_configuration_outcome
from repro.experiments.scenario import make_problem
from repro.faults.model import (
    FaultKind,
    FaultScenario,
    FaultSpec,
    hub_stress_ensemble,
    sample_fault_ensemble,
    torso_crossing_links,
)
from repro.library.mac_options import MacKind, RoutingKind

PLACEMENT = (0, 1, 3, 6)


def spec(kind=FaultKind.HUB_OUTAGE, start=2.0, dur=2.0, loc=0, **kw):
    return FaultSpec(kind=kind, start_s=start, duration_s=dur, location=loc, **kw)


class TestFaultSpecValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            spec(start=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            spec(dur=0.0)

    def test_blackout_requires_link(self):
        with pytest.raises(ValueError, match="link"):
            FaultSpec(FaultKind.LINK_BLACKOUT, start_s=1.0, duration_s=1.0)

    def test_blackout_link_must_be_distinct(self):
        with pytest.raises(ValueError, match="distinct"):
            FaultSpec(
                FaultKind.LINK_BLACKOUT, start_s=1.0, duration_s=1.0, link=(3, 3)
            )

    def test_blackout_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            FaultSpec(FaultKind.LINK_BLACKOUT, start_s=1.0, link=(0, 3))

    def test_node_kinds_require_location(self):
        with pytest.raises(ValueError, match="location"):
            FaultSpec(FaultKind.NODE_DEATH, start_s=1.0)

    def test_node_kinds_reject_link(self):
        with pytest.raises(ValueError, match="link"):
            FaultSpec(
                FaultKind.NODE_DEATH, start_s=1.0, location=1, link=(0, 1)
            )

    def test_hub_outage_must_recover(self):
        with pytest.raises(ValueError, match="recover"):
            FaultSpec(FaultKind.HUB_OUTAGE, start_s=1.0, location=0)

    def test_drain_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(
                FaultKind.BATTERY_DRAIN, start_s=1.0, location=1, factor=1.0
            )

    def test_link_stored_sorted(self):
        s = FaultSpec(
            FaultKind.LINK_BLACKOUT, start_s=1.0, duration_s=1.0, link=(6, 1)
        )
        assert s.link == (1, 6)


class TestFaultSpecSemantics:
    def test_applies_to_location(self):
        s = spec(kind=FaultKind.NODE_DEATH, dur=math.inf, loc=3)
        assert s.applies_to(PLACEMENT)
        assert not s.applies_to((0, 1, 2))

    def test_applies_to_link_needs_both_endpoints(self):
        s = FaultSpec(
            FaultKind.LINK_BLACKOUT, start_s=1.0, duration_s=1.0, link=(1, 6)
        )
        assert s.applies_to(PLACEMENT)
        assert not s.applies_to((0, 1, 3))  # only one endpoint placed

    def test_recoverable(self):
        assert spec().recoverable
        assert not spec(kind=FaultKind.NODE_DEATH, dur=math.inf).recoverable

    def test_clear_time_is_last_recoverable_end(self):
        scenario = FaultScenario(
            "s",
            (
                spec(start=1.0, dur=2.0),  # clears at 3
                FaultSpec(
                    FaultKind.LINK_BLACKOUT,
                    start_s=2.0,
                    duration_s=3.0,
                    link=(1, 3),
                ),  # clears at 5
                spec(kind=FaultKind.NODE_DEATH, dur=math.inf, loc=6),
            ),
        )
        assert scenario.clear_time_s(PLACEMENT) == 5.0
        # Without the blackout's endpoints, only the outage counts.
        assert scenario.clear_time_s((0, 2, 6)) == 3.0
        # No recoverable fault applicable at all.
        assert FaultScenario("empty").clear_time_s(PLACEMENT) is None

    def test_describe_mentions_kind_and_target(self):
        text = spec(kind=FaultKind.BATTERY_DRAIN, loc=3, factor=2.5).describe()
        assert "battery_drain" in text and "loc 3" in text and "x2.5" in text


class TestRoundTrip:
    def test_spec_json_round_trip(self):
        for s in (
            spec(),
            spec(kind=FaultKind.NODE_DEATH, dur=math.inf, loc=6),
            FaultSpec(
                FaultKind.LINK_BLACKOUT, start_s=0.5, duration_s=1.5, link=(6, 1)
            ),
            FaultSpec(
                FaultKind.BATTERY_DRAIN, start_s=0.0, location=3, factor=3.0
            ),
        ):
            payload = json.loads(json.dumps(s.to_dict()))
            assert FaultSpec.from_dict(payload) == s

    def test_scenario_json_round_trip(self):
        scenario = FaultScenario("rt", (spec(), spec(start=5.0, dur=1.0)))
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert FaultScenario.from_dict(payload) == scenario


class TestEnsembleGenerators:
    def test_sampled_ensemble_is_deterministic(self):
        a = sample_fault_ensemble(6, seed=11, horizon_s=8.0)
        b = sample_fault_ensemble(6, seed=11, horizon_s=8.0)
        assert a == b

    def test_sampled_ensembles_differ_across_seeds(self):
        assert sample_fault_ensemble(6, seed=11, horizon_s=8.0) != (
            sample_fault_ensemble(6, seed=12, horizon_s=8.0)
        )

    def test_sampled_ensemble_shape(self):
        ensemble = sample_fault_ensemble(6, seed=0, horizon_s=8.0)
        assert len(ensemble) == 6
        assert len({fs.name for fs in ensemble}) == 6
        for fs in ensemble:
            assert len(fs) == 2  # one blackout + one round-robin fault
            assert fs.faults[0].kind is FaultKind.LINK_BLACKOUT

    def test_sampled_ensemble_validates_inputs(self):
        with pytest.raises(ValueError):
            sample_fault_ensemble(0, seed=0, horizon_s=8.0)
        with pytest.raises(ValueError):
            sample_fault_ensemble(1, seed=0, horizon_s=-1.0)
        with pytest.raises(ValueError):
            sample_fault_ensemble(1, seed=0, horizon_s=8.0, locations=(0,))

    def test_hub_stress_ensemble_phases(self):
        ensemble = hub_stress_ensemble(8.0, outage_fraction=0.25, size=3)
        assert len(ensemble) == 3
        starts = []
        for fs in ensemble:
            (fault,) = fs.faults
            assert fault.kind is FaultKind.HUB_OUTAGE
            assert fault.location == 0
            assert fault.end_s < 8.0  # always clears before the horizon
            starts.append(fault.start_s)
        assert starts == sorted(starts) and len(set(starts)) == 3

    def test_hub_stress_validates_fraction(self):
        with pytest.raises(ValueError):
            hub_stress_ensemble(8.0, outage_fraction=1.0)


class TestCorrelatedGroups:
    """Satellite: correlated link-fault groups — one shadowing event that
    blacks out every torso-crossing link simultaneously."""

    def test_group_is_a_blackout_only_concept(self):
        with pytest.raises(ValueError, match="group"):
            spec(group="torso")  # hub outage
        with pytest.raises(ValueError, match="group"):
            FaultSpec(
                FaultKind.NODE_DEATH, start_s=1.0, location=3, group="torso"
            )

    def test_group_survives_round_trip_and_describe(self):
        s = FaultSpec(
            FaultKind.LINK_BLACKOUT,
            start_s=1.0,
            duration_s=2.0,
            link=(0, 6),
            group="torso-0",
        )
        assert FaultSpec.from_dict(json.loads(json.dumps(s.to_dict()))) == s
        assert "@torso-0" in s.describe()

    def test_torso_crossing_links_are_occluded_pairs(self):
        from repro.channel.body import STANDARD_BODY

        pairs = torso_crossing_links(range(10))
        assert pairs, "the standard body must occlude some link"
        assert list(pairs) == sorted(pairs)
        for a, b in pairs:
            assert a < b
            assert STANDARD_BODY.is_occluded(a, b)

    def test_correlated_ensemble_is_deterministic_and_synchronized(self):
        a = sample_fault_ensemble(
            4, seed=11, horizon_s=8.0, correlated_links=True
        )
        assert a == sample_fault_ensemble(
            4, seed=11, horizon_s=8.0, correlated_links=True
        )
        expected_pairs = set(torso_crossing_links(range(10)))
        for k, fs in enumerate(a):
            grouped = [f for f in fs.faults if f.group is not None]
            assert {f.link for f in grouped} == expected_pairs
            # one shadowing event: every member shares group and window
            assert {f.group for f in grouped} == {f"torso-{k}"}
            assert len({(f.start_s, f.duration_s) for f in grouped}) == 1

    def test_correlation_never_perturbs_the_default_draws(self):
        """The group window comes from dedicated ``faults/group_*``
        streams, so the round-robin faults (hub/death/drain) are drawn
        identically whether or not correlation is on."""
        plain = sample_fault_ensemble(6, seed=3, horizon_s=8.0)
        correlated = sample_fault_ensemble(
            6, seed=3, horizon_s=8.0, correlated_links=True
        )
        for p, c in zip(plain, correlated):
            assert [f for f in p.faults if f.kind is not FaultKind.LINK_BLACKOUT] == [
                f for f in c.faults if f.kind is not FaultKind.LINK_BLACKOUT
            ]

    def test_correlation_requires_an_occluded_pair(self):
        from repro.channel.body import STANDARD_BODY

        clear = next(
            (a, b)
            for a in range(10)
            for b in range(a + 1, 10)
            if not STANDARD_BODY.is_occluded(a, b)
        )
        with pytest.raises(ValueError, match="nothing to correlate"):
            sample_fault_ensemble(
                2,
                seed=0,
                horizon_s=8.0,
                locations=clear,
                correlated_links=True,
                coordinator=clear[0],
            )


# -- simulated behaviour -------------------------------------------------------


@pytest.fixture(scope="module")
def scenario():
    return make_problem(0.9, "smoke", seed=1).scenario


@pytest.fixture(scope="module")
def config():
    return Configuration(PLACEMENT, 0.0, MacKind.TDMA, RoutingKind.STAR)


def outcome_under(scenario, config, fault_scenario):
    return run_configuration_outcome(
        replace(scenario, fault_scenario=fault_scenario), config
    )


class TestInjectedBehaviour:
    def test_node_death_reduces_pdr(self, scenario, config):
        healthy = outcome_under(scenario, config, None)
        dead = outcome_under(
            scenario,
            config,
            FaultScenario(
                "death",
                (
                    FaultSpec(
                        FaultKind.NODE_DEATH, start_s=2.0, location=6
                    ),
                ),
            ),
        )
        assert dead.pdr < healthy.pdr

    def test_link_blackout_reduces_pdr(self, scenario, config):
        healthy = outcome_under(scenario, config, None)
        blacked = outcome_under(
            scenario,
            config,
            FaultScenario(
                "blackout",
                (
                    FaultSpec(
                        FaultKind.LINK_BLACKOUT,
                        start_s=1.0,
                        duration_s=6.0,
                        link=(0, 6),
                    ),
                ),
            ),
        )
        assert blacked.pdr < healthy.pdr

    def test_hub_outage_dents_windowed_pdr_then_recovers(
        self, scenario, config
    ):
        healthy = outcome_under(scenario, config, None)
        faulted = outcome_under(
            scenario,
            config,
            FaultScenario("outage", (spec(start=3.0, dur=2.0),)),
        )
        assert faulted.windowed_pdr, "faulted runs must expose windowed PDR"
        ratios = {t: r for t, r in faulted.windowed_pdr if r is not None}
        during = [r for t, r in ratios.items() if 3.0 < t <= 5.0]
        after = [r for t, r in ratios.items() if t > 6.0]
        assert min(during) < healthy.pdr - 0.3  # the outage bites
        assert max(after) >= healthy.pdr - 0.1  # and the network recovers

    def test_battery_drain_shortens_lifetime(self, scenario, config):
        healthy = outcome_under(scenario, config, None)
        drained = outcome_under(
            scenario,
            config,
            FaultScenario(
                "drain",
                (
                    # Location 6, not the coordinator: the NLT is the
                    # first *sensor* battery to die.
                    FaultSpec(
                        FaultKind.BATTERY_DRAIN,
                        start_s=0.0,
                        location=6,
                        factor=3.0,
                    ),
                ),
            ),
        )
        assert drained.nlt_days < healthy.nlt_days
        assert drained.pdr == healthy.pdr  # drain never perturbs traffic

    def test_inapplicable_fault_changes_nothing(self, scenario, config):
        healthy = outcome_under(scenario, config, None)
        untouched = outcome_under(
            scenario,
            config,
            FaultScenario(
                "elsewhere",
                (
                    FaultSpec(
                        FaultKind.NODE_DEATH, start_s=1.0, location=9
                    ),
                ),
            ),
        )
        assert untouched.pdr == healthy.pdr
        assert untouched.nlt_days == healthy.nlt_days

    def test_injection_is_deterministic(self, scenario, config):
        fs = FaultScenario("outage", (spec(start=3.0, dur=2.0),))
        first = outcome_under(scenario, config, fs)
        second = outcome_under(scenario, config, fs)
        assert first.pdr == second.pdr
        assert first.windowed_pdr == second.windowed_pdr
        assert first.nlt_days == second.nlt_days


def _blackout(link, group=None, start=1.0, dur=6.0):
    return FaultSpec(
        FaultKind.LINK_BLACKOUT,
        start_s=start,
        duration_s=dur,
        link=link,
        group=group,
    )


class TestGroupInjection:
    """The injector compiles a correlation group into one synchronized
    lane of blackout events — semantically identical to the same
    blackouts injected individually with equal windows."""

    def test_group_blackout_reduces_pdr(self, scenario, config):
        healthy = outcome_under(scenario, config, None)
        grouped = outcome_under(
            scenario,
            config,
            FaultScenario(
                "group",
                (_blackout((0, 6), "g"), _blackout((1, 3), "g")),
            ),
        )
        assert grouped.pdr < healthy.pdr

    def test_grouped_equals_ungrouped_with_same_windows(self, scenario, config):
        links = ((0, 6), (1, 3))
        grouped = outcome_under(
            scenario,
            config,
            FaultScenario("g", tuple(_blackout(l, "g") for l in links)),
        )
        ungrouped = outcome_under(
            scenario,
            config,
            FaultScenario("u", tuple(_blackout(l) for l in links)),
        )
        assert grouped.pdr == ungrouped.pdr
        assert grouped.windowed_pdr == ungrouped.windowed_pdr
        assert grouped.nlt_days == ungrouped.nlt_days

    def test_mixed_window_group_is_rejected(self, scenario, config):
        torn = FaultScenario(
            "torn",
            (
                _blackout((0, 6), "g", start=1.0),
                _blackout((1, 3), "g", start=2.0),
            ),
        )
        with pytest.raises(ValueError, match="mixes windows"):
            outcome_under(scenario, config, torn)
