"""Resilience evaluation: EnsembleOracle, quantiles, E4 divergence.

Pins the PR's acceptance criteria: the same ensemble + seed is
bit-identical at ``--jobs 1`` and ``--jobs 4``, a warm cache replays a
campaign with zero new simulations, and experiment E4 has at least one
regime where the robust optimum differs from the nominal one.
"""

from dataclasses import replace

import pytest

from repro.core.design_space import Configuration
from repro.experiments.robustness import run_robustness_comparison
from repro.experiments.scenario import make_problem
from repro.faults.model import FaultScenario, hub_stress_ensemble
from repro.faults.resilience import EnsembleOracle, pdr_quantile
from repro.library.mac_options import MacKind, RoutingKind

CONFIGS = (
    Configuration((0, 1, 3, 6), 0.0, MacKind.TDMA, RoutingKind.STAR),
    Configuration((0, 1, 3, 6), 0.0, MacKind.CSMA, RoutingKind.MESH),
)


@pytest.fixture(scope="module")
def scenario():
    return make_problem(0.9, "smoke", seed=1).scenario


@pytest.fixture(scope="module")
def ensemble(scenario):
    return hub_stress_ensemble(
        scenario.tsim_s, outage_fraction=0.25, size=2
    )


class TestPdrQuantile:
    def test_extremes(self):
        values = (0.4, 0.9, 0.7)
        assert pdr_quantile(values, 0.0) == 0.4
        assert pdr_quantile(values, 1.0) == 0.9

    def test_nearest_rank_is_observed_value(self):
        values = (0.1, 0.2, 0.3, 0.4)
        assert pdr_quantile(values, 0.25) == 0.1
        assert pdr_quantile(values, 0.5) == 0.2
        assert pdr_quantile(values, 0.75) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            pdr_quantile((), 0.5)
        with pytest.raises(ValueError):
            pdr_quantile((0.5,), 1.5)


class TestEnsembleOracleValidation:
    def test_rejects_faulted_base_scenario(self, scenario, ensemble):
        with pytest.raises(ValueError, match="healthy"):
            EnsembleOracle(
                replace(scenario, fault_scenario=ensemble[0]), ensemble
            )

    def test_rejects_empty_ensemble(self, scenario):
        with pytest.raises(ValueError, match="empty"):
            EnsembleOracle(scenario, ())

    def test_rejects_duplicate_names(self, scenario, ensemble):
        with pytest.raises(ValueError, match="duplicate"):
            EnsembleOracle(scenario, (ensemble[0], ensemble[0]))


class TestResilienceEvaluation:
    def test_record_internally_consistent(self, scenario, ensemble):
        with EnsembleOracle(scenario, ensemble, n_jobs=1) as oracle:
            record = oracle.evaluate(CONFIGS[0])
        assert len(record.fault_pdrs) == len(ensemble)
        assert record.pdr_min_fault == min(record.fault_pdrs)
        assert record.pdr_quantile(0.0) == record.pdr_min_fault
        assert record.pdr_mean_fault == pytest.approx(
            sum(record.fault_pdrs) / len(record.fault_pdrs)
        )
        assert 0.0 <= record.lifetime_degradation <= 1.0
        # A hub outage hurts but the healthy run does not see it.
        assert record.pdr_min_fault < record.healthy.pdr
        payload = record.to_dict()
        assert set(payload["fault_pdrs"]) == {fs.name for fs in ensemble}

    def test_bit_identical_across_jobs(self, scenario, ensemble):
        with EnsembleOracle(scenario, ensemble, n_jobs=1) as serial:
            one = [r.to_dict() for r in serial.evaluate_many(CONFIGS)]
        with EnsembleOracle(scenario, ensemble, n_jobs=4) as parallel:
            four = [r.to_dict() for r in parallel.evaluate_many(CONFIGS)]
        assert one == four

    def test_warm_cache_replays_without_simulating(
        self, scenario, ensemble, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        with EnsembleOracle(
            scenario, ensemble, n_jobs=1, cache_dir=cache_dir
        ) as cold:
            first = cold.evaluate(CONFIGS[0])
            assert cold.stats()["simulations_run"] == 1 + len(ensemble)
        with EnsembleOracle(
            scenario, ensemble, n_jobs=1, cache_dir=cache_dir
        ) as warm:
            second = warm.evaluate(CONFIGS[0])
            stats = warm.stats()
        assert stats["simulations_run"] == 0
        assert stats["disk_hits"] == 1 + len(ensemble)
        assert second.to_dict() == first.to_dict()

    def test_stats_reports_ensemble_shape(self, scenario, ensemble):
        with EnsembleOracle(scenario, ensemble, n_jobs=1) as oracle:
            oracle.evaluate(CONFIGS[0])
            stats = oracle.stats()
        assert stats["ensemble_size"] == len(ensemble)
        assert stats["ensemble_evaluations"] == 1


class TestE4Divergence:
    """The pinned regime where pricing faults in changes the answer."""

    @pytest.fixture(scope="class")
    def data(self):
        return run_robustness_comparison(
            preset="smoke",
            seed=3,
            pdr_min=0.85,
            quantile=0.0,
            outage_fraction=0.2,
            ensemble_size=2,
            n_jobs=1,
        )

    def test_robust_optimum_differs_from_nominal(self, data):
        assert data.nominal.found and data.robust.found
        assert data.divergent, (
            "E4 must exhibit at least one scenario where the "
            "chance-constrained optimum differs from the nominal one"
        )

    def test_robust_design_meets_chance_constraint(self, data):
        assert (
            data.robust.best.pdr_quantile(data.quantile)
            >= data.pdr_min - 0.01
        )

    def test_nominal_design_violates_it(self, data):
        # ... which is exactly why the optima diverge.
        assert (
            data.nominal_resilience.pdr_quantile(data.quantile)
            < data.pdr_min
        )

    def test_robust_pays_power_for_reliability(self, data):
        assert (
            data.robust.best.healthy.power_mw
            >= data.nominal.best.power_mw
        )

    def test_per_routing_results_present(self, data):
        assert set(data.per_routing) == {RoutingKind.STAR, RoutingKind.MESH}
        for result in data.per_routing.values():
            assert result.status in ("optimal", "infeasible")
