"""Golden-trace regression test for Algorithm 1's decision trajectory.

Runs the reference scenario (smoke preset, seed 0, PDR_min = 90%)
end-to-end with tracing enabled and compares the *deterministic
projection* of the trace — the ordered ``explorer.*`` events with timing
fields stripped — against the snapshot in ``tests/golden/``.  Any change
to the candidate sequence, accept/reject verdicts, incumbent updates,
cuts, or termination reason fails loudly instead of drifting silently.

Regenerate after an intentional behaviour change with::

    pytest tests/test_golden_trace.py --update-golden

and review the snapshot diff like code.
"""

import json
import pathlib

from repro.analysis.trace_report import explorer_sequence
from repro.core.explorer import HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem
from repro.faults.model import hub_stress_ensemble
from repro.faults.resilience import EnsembleOracle
from repro.obs import Instrumentation, MetricsRegistry, TraceWriter, read_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "explorer_smoke_pdr90.json"
ROBUST_GOLDEN_PATH = GOLDEN_DIR / "robust_smoke_pdr85.json"

PRESET = "smoke"
PDR_MIN = 0.90
SEED = 0

#: The pinned E4 regime (see tests/test_faults_resilience.py): smoke
#: preset, hub-stress fault ensemble, chance constraint at the ensemble
#: minimum.
ROBUST_PDR_MIN = 0.85
ROBUST_SEED = 3
ROBUST_QUANTILE = 0.0
ROBUST_OUTAGE_FRACTION = 0.2
ROBUST_ENSEMBLE_SIZE = 2

UPDATE_HINT = (
    "explorer trajectory diverged from tests/golden/%s; if the change is "
    "intentional, regenerate with `pytest tests/test_golden_trace.py "
    "--update-golden` and review the diff" % GOLDEN_PATH.name
)

ROBUST_UPDATE_HINT = (
    "robust explorer trajectory diverged from tests/golden/%s; if the "
    "change is intentional, regenerate with `pytest "
    "tests/test_golden_trace.py --update-golden` and review the diff"
    % ROBUST_GOLDEN_PATH.name
)


def run_reference(trace_path, n_jobs: int = 1):
    """One seeded reference run; returns the deterministic projection."""
    problem = make_problem(PDR_MIN, PRESET, seed=SEED, n_jobs=n_jobs)
    preset = get_preset(PRESET)
    with TraceWriter(trace_path) as tracer:
        obs = Instrumentation(MetricsRegistry(), tracer)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        try:
            result = explorer.explore()
        finally:
            explorer.oracle.close()
    assert result.found, "reference scenario must be feasible"
    return explorer_sequence(read_trace(trace_path))


def test_golden_trace_reference_run(tmp_path, update_golden):
    sequence = run_reference(tmp_path / "run.jsonl")
    assert sequence, "traced run produced no explorer events"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(sequence, indent=1) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sequence == golden, UPDATE_HINT


def test_golden_trace_invariant_across_n_jobs(tmp_path):
    """The projection is bit-identical under parallel fan-out: worker
    scheduling must never leak into the explorer's decisions."""
    golden = json.loads(GOLDEN_PATH.read_text())
    parallel = run_reference(tmp_path / "parallel.jsonl", n_jobs=2)
    assert parallel == golden, UPDATE_HINT


def test_golden_trace_repeatable_within_process(tmp_path):
    """Two runs in one process agree (no hidden global state)."""
    first = run_reference(tmp_path / "a.jsonl")
    second = run_reference(tmp_path / "b.jsonl")
    assert first == second


def run_robust_reference(trace_path, n_jobs: int = 1):
    """One seeded chance-constrained run; returns the projection (the
    ordered ``explorer.robust_*`` milestones, timing stripped)."""
    problem = make_problem(
        ROBUST_PDR_MIN, PRESET, seed=ROBUST_SEED, n_jobs=n_jobs
    )
    preset = get_preset(PRESET)
    ensemble = hub_stress_ensemble(
        problem.scenario.tsim_s,
        coordinator=problem.scenario.coordinator_location,
        outage_fraction=ROBUST_OUTAGE_FRACTION,
        size=ROBUST_ENSEMBLE_SIZE,
    )
    with TraceWriter(trace_path) as tracer:
        obs = Instrumentation(MetricsRegistry(), tracer)
        with EnsembleOracle(
            problem.scenario, ensemble, n_jobs=n_jobs, obs=obs
        ) as oracle:
            result = HumanIntranetExplorer(
                problem, candidate_cap=preset.candidate_cap, obs=obs
            ).explore_robust(oracle, quantile=ROBUST_QUANTILE)
    assert result.found, "robust reference scenario must be feasible"
    return explorer_sequence(read_trace(trace_path))


def test_robust_golden_trace_reference_run(tmp_path, update_golden):
    sequence = run_robust_reference(tmp_path / "robust.jsonl")
    assert sequence, "traced robust run produced no explorer events"
    assert any(
        ev["kind"] == "explorer.robust_candidate" for ev in sequence
    )
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        ROBUST_GOLDEN_PATH.write_text(json.dumps(sequence, indent=1) + "\n")
    golden = json.loads(ROBUST_GOLDEN_PATH.read_text())
    assert sequence == golden, ROBUST_UPDATE_HINT


def test_robust_golden_trace_invariant_across_n_jobs(tmp_path):
    """The chance-constrained trajectory — including every per-fault-world
    evaluation feeding the quantile — is bit-identical under fan-out."""
    golden = json.loads(ROBUST_GOLDEN_PATH.read_text())
    parallel = run_robust_reference(tmp_path / "parallel.jsonl", n_jobs=4)
    assert parallel == golden, ROBUST_UPDATE_HINT
