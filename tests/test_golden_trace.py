"""Golden-trace regression test for Algorithm 1's decision trajectory.

Runs the reference scenario (smoke preset, seed 0, PDR_min = 90%)
end-to-end with tracing enabled and compares the *deterministic
projection* of the trace — the ordered ``explorer.*`` events with timing
fields stripped — against the snapshot in ``tests/golden/``.  Any change
to the candidate sequence, accept/reject verdicts, incumbent updates,
cuts, or termination reason fails loudly instead of drifting silently.

Regenerate after an intentional behaviour change with::

    pytest tests/test_golden_trace.py --update-golden

and review the snapshot diff like code.
"""

import json
import pathlib

from repro.analysis.trace_report import explorer_sequence
from repro.core.explorer import HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem
from repro.obs import Instrumentation, MetricsRegistry, TraceWriter, read_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "explorer_smoke_pdr90.json"

PRESET = "smoke"
PDR_MIN = 0.90
SEED = 0

UPDATE_HINT = (
    "explorer trajectory diverged from tests/golden/%s; if the change is "
    "intentional, regenerate with `pytest tests/test_golden_trace.py "
    "--update-golden` and review the diff" % GOLDEN_PATH.name
)


def run_reference(trace_path, n_jobs: int = 1):
    """One seeded reference run; returns the deterministic projection."""
    problem = make_problem(PDR_MIN, PRESET, seed=SEED, n_jobs=n_jobs)
    preset = get_preset(PRESET)
    with TraceWriter(trace_path) as tracer:
        obs = Instrumentation(MetricsRegistry(), tracer)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        try:
            result = explorer.explore()
        finally:
            explorer.oracle.close()
    assert result.found, "reference scenario must be feasible"
    return explorer_sequence(read_trace(trace_path))


def test_golden_trace_reference_run(tmp_path, update_golden):
    sequence = run_reference(tmp_path / "run.jsonl")
    assert sequence, "traced run produced no explorer events"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(sequence, indent=1) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sequence == golden, UPDATE_HINT


def test_golden_trace_invariant_across_n_jobs(tmp_path):
    """The projection is bit-identical under parallel fan-out: worker
    scheduling must never leak into the explorer's decisions."""
    golden = json.loads(GOLDEN_PATH.read_text())
    parallel = run_reference(tmp_path / "parallel.jsonl", n_jobs=2)
    assert parallel == golden, UPDATE_HINT


def test_golden_trace_repeatable_within_process(tmp_path):
    """Two runs in one process agree (no hidden global state)."""
    first = run_reference(tmp_path / "a.jsonl")
    second = run_reference(tmp_path / "b.jsonl")
    assert first == second
