"""Cross-module consistency: the analytical model vs. the simulator.

Algorithm 1's soundness rests on two relationships between the coarse
model (Eq. 9) and the discrete-event simulation:

1. on a loss-free channel the simulated node power approaches the
   analytical P̄ (the model is *asymptotically exact*, Sec. 3's
   "assumption that all messages are correctly received");
2. on a lossy channel the simulated power never exceeds P̄ by more than
   protocol overhead, and never drops below the α lower bound
   P̄_lb = P_bl + PDR·(P̄ − P_bl) — the inequality the termination
   criterion (line 5) depends on.

These tests check both across routing, MAC, TX level, and node count.
"""

import pytest

from repro.channel.fading import FadingParameters
from repro.core.power_model import CoarsePowerModel
from repro.library.batteries import CR2032
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.network import simulate_configuration

MODEL = CoarsePowerModel(CC2650, AppParameters(), CR2032)
QUIET = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)

#: Strong-link placements where every pair closes at 0 dBm with margin, so
#: a quiet channel is genuinely loss-free.
CLEAN_PLACEMENTS = [(0, 1, 2), (0, 1, 2, 5), (0, 1, 2, 5, 6)]


def run(placement, routing_kind, mac_kind, tx_dbm, fading=QUIET, tsim=12.0,
        seed=0):
    return simulate_configuration(
        placement=placement,
        radio_spec=CC2650,
        tx_mode=CC2650.tx_mode_by_dbm(tx_dbm),
        mac_options=MacOptions(kind=mac_kind),
        routing_options=RoutingOptions(
            kind=routing_kind, coordinator=0, max_hops=2
        ),
        app_params=AppParameters(),
        tsim_s=tsim,
        replicates=1,
        seed=seed,
        fading_params=fading,
    )


class TestAsymptoticExactness:
    @pytest.mark.parametrize("placement", CLEAN_PLACEMENTS)
    @pytest.mark.parametrize("routing", [RoutingKind.STAR, RoutingKind.MESH])
    def test_clean_channel_power_bounded_by_eq9(self, placement, routing):
        """Eq. 9 is an upper bound that the loss-free simulation approaches
        from below (it overcounts star receptions slightly; see below)."""
        outcome = run(placement, routing, MacKind.TDMA, 0.0)
        analytic = MODEL.node_power_mw(
            RoutingOptions(kind=routing, coordinator=0, max_hops=2),
            len(placement),
            CC2650.tx_mode_by_dbm(0.0),
        )
        assert outcome.pdr == pytest.approx(1.0)
        assert outcome.worst_power_mw <= analytic * 1.05
        assert outcome.worst_power_mw >= analytic * 0.70

    @pytest.mark.parametrize("placement", CLEAN_PLACEMENTS)
    def test_clean_channel_star_power_matches_true_count(self, placement):
        """The protocol-exact star reception count is 2N−3 packets per
        round (Eq. 5 assumes 2(N−1): it overcounts by the coordinator's
        own never-relayed traffic and the to-coordinator packets that need
        no relay).  The simulation must match the exact count tightly."""
        outcome = run(placement, RoutingKind.STAR, MacKind.TDMA, 0.0)
        n = len(placement)
        tpkt = CC2650.packet_airtime_s(100)
        mode = CC2650.tx_mode_by_dbm(0.0)
        true_power = 0.1 + 10.0 * tpkt * (
            mode.power_mw + (2 * n - 3) * CC2650.rx_power_mw
        )
        assert outcome.worst_power_mw == pytest.approx(true_power, rel=0.05)

    def test_star_factor_two_receptions(self):
        """Eq. 5's star factor 2(N−1): each node hears originals and the
        coordinator's relays.  Measured RX events per node per generated
        payload must approach 2 within protocol edge effects."""
        outcome = run((0, 1, 2, 5), RoutingKind.STAR, MacKind.TDMA, 0.0)
        receptions = outcome.totals["receptions"]
        transmissions = outcome.totals["transmissions"]
        n = 4
        # Every transmission is heard by the N-1 others on a clean channel.
        assert receptions == pytest.approx(transmissions * (n - 1), rel=0.01)

    def test_mesh_transmission_count_matches_nretx(self):
        """Total transmissions per payload approach N_reTx on a clean
        channel (the quantity Eq. 9's mesh branch scales with)."""
        placement = (0, 1, 2, 5)
        outcome = run(placement, RoutingKind.MESH, MacKind.TDMA, 0.0)
        n = len(placement)
        nretx = n * n - 4 * n + 5
        payloads = outcome.totals["transmissions"] / nretx
        # payloads ~ tsim * phi * N; allow drain-window slack.
        expected_payloads = 12.0 * 10.0 * n
        assert payloads == pytest.approx(expected_payloads, rel=0.05)


class TestAlphaInequality:
    @pytest.mark.parametrize("tx_dbm", [-20.0, -10.0, 0.0])
    @pytest.mark.parametrize("mac", [MacKind.CSMA, MacKind.TDMA])
    def test_star_power_within_alpha_sandwich(self, tx_dbm, mac):
        """Star: P̄_lb(PDR_sim, slack=0.7) ≤ P_sim ≤ (1 + overhead)·P̄ on
        the real lossy channel.

        The paper's raw α (slack = 1) is *not* a strict lower bound here
        because Eq. 5 systematically overcounts star receptions (the
        coordinator's own traffic is never relayed); the measured bias
        bottoms out near 0.78, so the bound with the documented
        conservative slack of 0.7 must hold everywhere.
        """
        placement = (0, 1, 3, 6)  # the paper's running example
        outcome = run(placement, RoutingKind.STAR, mac, tx_dbm,
                      fading=None, tsim=20.0)
        analytic = MODEL.node_power_mw(
            RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            len(placement),
            CC2650.tx_mode_by_dbm(tx_dbm),
        )
        lower = MODEL.power_lower_bound_mw(
            analytic, outcome.pdr, model_slack=0.7
        )
        assert outcome.worst_power_mw <= analytic * 1.10
        assert outcome.worst_power_mw >= lower

    @pytest.mark.parametrize("tx_dbm", [-20.0, -10.0, 0.0])
    def test_mesh_power_within_structural_bounds(self, tx_dbm):
        """Mesh: packet losses collapse the relay cascade quadratically
        while redundancy keeps PDR high, so a PDR-linear lower bound does
        not exist.  What always holds: P̄ bounds from above, and the node's
        own unconditional TX traffic plus baseline bounds from below."""
        placement = (0, 1, 3, 6)
        outcome = run(placement, RoutingKind.MESH, MacKind.TDMA, tx_dbm,
                      fading=None, tsim=20.0)
        mode = CC2650.tx_mode_by_dbm(tx_dbm)
        analytic = MODEL.node_power_mw(
            RoutingOptions(kind=RoutingKind.MESH, max_hops=2),
            len(placement),
            mode,
        )
        own_tx_floor = 0.1 + 10.0 * CC2650.packet_airtime_s(100) * mode.power_mw
        assert outcome.worst_power_mw <= analytic * 1.10
        assert outcome.worst_power_mw >= own_tx_floor * 0.95

    def test_lossier_channel_lower_power(self):
        """Packet losses save energy (below-sensitivity arrivals never wake
        the receiver): reducing TX power must reduce measured power faster
        than the TX-term alone."""
        strong = run((0, 1, 3, 6), RoutingKind.STAR, MacKind.TDMA, 0.0,
                     fading=None, tsim=20.0)
        weak = run((0, 1, 3, 6), RoutingKind.STAR, MacKind.TDMA, -20.0,
                   fading=None, tsim=20.0)
        assert weak.pdr < strong.pdr
        assert weak.worst_power_mw < strong.worst_power_mw


class TestRegimeOrdering:
    """The qualitative orderings Figure 3 rests on, at simulation level."""

    def test_pdr_monotone_in_tx_power(self):
        pdrs = [
            run((0, 1, 3, 6), RoutingKind.STAR, MacKind.TDMA, dbm,
                fading=None, tsim=20.0).pdr
            for dbm in (-20.0, -10.0, 0.0)
        ]
        assert pdrs[0] < pdrs[1] < pdrs[2]

    def test_mesh_more_reliable_than_star_at_equal_power_level(self):
        star = run((0, 1, 3, 6), RoutingKind.STAR, MacKind.TDMA, 0.0,
                   fading=None, tsim=20.0)
        mesh = run((0, 1, 3, 6), RoutingKind.MESH, MacKind.TDMA, 0.0,
                   fading=None, tsim=20.0)
        assert mesh.pdr > star.pdr
        assert mesh.worst_power_mw > star.worst_power_mw

    def test_tdma_at_least_as_reliable_as_csma_mesh(self):
        """Mesh flooding loads the channel; TDMA's collision-freedom must
        show up as equal or better PDR than CSMA."""
        csma = run((0, 1, 3, 6), RoutingKind.MESH, MacKind.CSMA, 0.0,
                   fading=None, tsim=20.0)
        tdma = run((0, 1, 3, 6), RoutingKind.MESH, MacKind.TDMA, 0.0,
                   fading=None, tsim=20.0)
        assert tdma.pdr >= csma.pdr - 0.005
        assert csma.totals["collisions_seen"] > tdma.totals["collisions_seen"]
