"""Checkpoint/resume tests for the crash-safe run journal.

Unit layer: CRC framing, torn-tail tolerance, corruption detection,
manifest verification, divergence detection, summary projection.

Integration layer: the contract the journal exists for — kill an
exploration campaign at an arbitrary journal prefix (including a torn
final line), resume it, and get the bit-identical final result, summary
projection, and golden-trace projection of a never-interrupted run, with
every journaled candidate answered by replay instead of re-simulation.
Both the nominal (``explore``) and chance-constrained
(``explore_robust``) paths are exercised, including a resume of a
resumed run (double kill).
"""

import json

import pytest

from repro.analysis.trace_report import explorer_sequence
from repro.core.explorer import HumanIntranetExplorer
from repro.core.journal import (
    JOURNAL_FILENAME,
    JournalError,
    RunJournal,
    SUMMARY_FILENAME,
    summary_projection,
    write_summary,
    _crc,
)
from repro.experiments.scenario import get_preset, make_problem
from repro.faults.model import hub_stress_ensemble
from repro.faults.resilience import EnsembleOracle
from repro.obs import Instrumentation, MetricsRegistry, TraceWriter, read_trace

from tests.test_golden_trace import (
    PDR_MIN,
    PRESET,
    ROBUST_ENSEMBLE_SIZE,
    ROBUST_OUTAGE_FRACTION,
    ROBUST_PDR_MIN,
    ROBUST_QUANTILE,
    ROBUST_SEED,
    SEED,
)

# ---------------------------------------------------------------------------
# unit layer
# ---------------------------------------------------------------------------


def test_create_refuses_existing_journal(tmp_path):
    with RunJournal.create(tmp_path, command="t"):
        pass
    with pytest.raises(JournalError, match="already exists"):
        RunJournal.create(tmp_path, command="t")


def test_resume_requires_a_journal(tmp_path):
    with pytest.raises(JournalError, match="no journal to resume"):
        RunJournal.resume(tmp_path / "nowhere")


def test_roundtrip_and_replay_cursor(tmp_path):
    with RunJournal.create(tmp_path, command="t", seed=7) as journal:
        assert journal.cut(1.25) is True  # appended
        assert journal.cut(2.5) is True
    with RunJournal.resume(tmp_path, command="t", seed=7) as journal:
        assert journal.replay_cuts() == [1.25, 2.5]
        # inside the prefix the same trajectory verifies, not re-appends
        assert journal.cut(1.25) is False
        assert journal.cut(2.5) is False
        # past the prefix it appends again
        assert journal.cut(3.75) is True
    with RunJournal.resume(tmp_path, command="t", seed=7) as journal:
        assert journal.replay_cuts() == [1.25, 2.5, 3.75]


def test_manifest_mismatch_is_rejected(tmp_path):
    with RunJournal.create(tmp_path, command="t", pdr_min=0.9):
        pass
    with pytest.raises(JournalError, match="manifest mismatch on 'pdr_min'"):
        RunJournal.resume(tmp_path, command="t", pdr_min=0.85)
    # keys the resumed run does not supply are not checked
    with RunJournal.resume(tmp_path, command="t"):
        pass


def test_version_mismatch_is_rejected(tmp_path):
    entry = {"kind": "manifest", "version": 999}
    line = json.dumps({"crc": _crc(entry), "entry": entry})
    (tmp_path / JOURNAL_FILENAME).write_text(line + "\n")
    with pytest.raises(JournalError, match="version 999"):
        RunJournal.resume(tmp_path)


def test_torn_final_line_is_dropped(tmp_path):
    with RunJournal.create(tmp_path, command="t") as journal:
        journal.cut(1.0)
        journal.cut(2.0)
    path = tmp_path / JOURNAL_FILENAME
    data = path.read_bytes()
    last_line_start = data[:-1].rfind(b"\n") + 1
    # kill mid-append: only half of the final line made it to disk
    path.write_bytes(data[: last_line_start + 20])
    with RunJournal.resume(tmp_path, command="t") as journal:
        assert journal.replay_cuts() == [1.0]


def test_midfile_corruption_is_fatal(tmp_path):
    with RunJournal.create(tmp_path, command="t") as journal:
        journal.cut(1.0)
        journal.cut(2.0)
    path = tmp_path / JOURNAL_FILENAME
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-10]  # damage an *interior* (fsynced) line
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt journal line 2"):
        RunJournal.resume(tmp_path, command="t")


def test_divergent_resumed_trajectory_is_fatal(tmp_path):
    with RunJournal.create(tmp_path, command="t") as journal:
        journal.cut(1.0)
    with RunJournal.resume(tmp_path, command="t") as journal:
        with pytest.raises(JournalError, match="diverged"):
            journal.cut(9.0)


def test_summary_projection_strips_nondeterminism():
    payload = {
        "found": True,
        "wall_seconds": 12.5,
        "oracle_stats": {
            "simulations_run": 16,
            "cache_hits": 3,
            "journal_replayed": 5,
            "elapsed_seconds": 4.2,
            "n_jobs": 8,
        },
    }
    projected = summary_projection(payload)
    assert projected == {
        "found": True,
        "oracle_stats": {"simulations_run": 16, "cache_hits": 3},
    }
    # input is not mutated
    assert "wall_seconds" in payload


def test_write_summary_is_projected_and_stable(tmp_path):
    payload = {"found": True, "wall_seconds": 3.0, "oracle_stats": {}}
    path = write_summary(tmp_path, payload)
    assert path == tmp_path / SUMMARY_FILENAME
    on_disk = json.loads(path.read_text())
    assert on_disk == summary_projection(payload)
    assert "wall_seconds" not in on_disk


# ---------------------------------------------------------------------------
# integration layer: kill/resume equivalence
# ---------------------------------------------------------------------------


def _explore_manifest():
    return dict(command="test-explore", preset=PRESET, seed=SEED,
                pdr_min=PDR_MIN)


def _robust_manifest():
    return dict(command="test-robust", preset=PRESET, seed=ROBUST_SEED,
                pdr_min=ROBUST_PDR_MIN, quantile=ROBUST_QUANTILE)


def run_explore(trace_path, journal=None):
    """One seeded nominal campaign; mirrors the golden-trace reference."""
    problem = make_problem(PDR_MIN, PRESET, seed=SEED, n_jobs=1)
    preset = get_preset(PRESET)
    with TraceWriter(trace_path) as tracer:
        obs = Instrumentation(MetricsRegistry(), tracer)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        try:
            result = explorer.explore(journal=journal)
            replayed = explorer.oracle.journal_replayed
        finally:
            explorer.oracle.close()
    assert result.found
    return (
        summary_projection(result.to_dict()),
        replayed,
        explorer_sequence(read_trace(trace_path)),
    )


def run_robust(trace_path, journal=None):
    """One seeded chance-constrained campaign (pinned E4 regime)."""
    problem = make_problem(ROBUST_PDR_MIN, PRESET, seed=ROBUST_SEED, n_jobs=1)
    preset = get_preset(PRESET)
    ensemble = hub_stress_ensemble(
        problem.scenario.tsim_s,
        coordinator=problem.scenario.coordinator_location,
        outage_fraction=ROBUST_OUTAGE_FRACTION,
        size=ROBUST_ENSEMBLE_SIZE,
    )
    with TraceWriter(trace_path) as tracer:
        obs = Instrumentation(MetricsRegistry(), tracer)
        with EnsembleOracle(
            problem.scenario, ensemble, n_jobs=1, obs=obs
        ) as oracle:
            result = HumanIntranetExplorer(
                problem, candidate_cap=preset.candidate_cap, obs=obs
            ).explore_robust(
                oracle, quantile=ROBUST_QUANTILE, journal=journal
            )
            # one registry is shared by every sub-oracle, so the healthy
            # oracle's counter is the ensemble-wide replay total
            replayed = oracle.healthy_oracle.journal_replayed
    assert result.found
    return (
        summary_projection(result.to_dict()),
        replayed,
        explorer_sequence(read_trace(trace_path)),
    )


def _kill_at(journal_path, n_entries, torn_bytes=25):
    """Truncate a finished journal to its manifest plus ``n_entries``
    entries, then append a torn fragment of the next line — exactly the
    on-disk state after a SIGKILL mid-append."""
    lines = journal_path.read_text().splitlines()
    assert len(lines) > n_entries + 1, "truncation point beyond journal"
    kept = lines[: n_entries + 1]
    torn = lines[n_entries + 1][:torn_bytes]
    journal_path.write_text("\n".join(kept) + "\n" + torn)
    return [json.loads(line)["entry"] for line in kept[1:]]


def _candidate_count(entries, kind="candidate"):
    return sum(1 for e in entries if e.get("kind") == kind)


def test_explore_kill_resume_is_bit_identical(tmp_path):
    ref_summary, ref_replayed, ref_seq = run_explore(tmp_path / "ref.jsonl")
    assert ref_replayed == 0

    # full journaled run: trajectory identical, journal holds the prefix
    run_dir = tmp_path / "run"
    with RunJournal.create(run_dir, **_explore_manifest()) as journal:
        full_summary, _, full_seq = run_explore(
            tmp_path / "journaled.jsonl", journal=journal
        )
    assert full_summary == ref_summary
    assert full_seq == ref_seq
    journal_path = run_dir / JOURNAL_FILENAME
    total_lines = len(journal_path.read_text().splitlines())
    assert total_lines > 4

    # kill #1: keep 3 entries + a torn tail, then resume to completion
    prefix = _kill_at(journal_path, 3)
    with RunJournal.resume(run_dir, **_explore_manifest()) as journal:
        summary1, replayed1, seq1 = run_explore(
            tmp_path / "resume1.jsonl", journal=journal
        )
    assert summary1 == ref_summary
    assert seq1 == ref_seq
    # zero re-simulation of the journaled prefix: every journaled
    # candidate was answered by replay adoption
    assert replayed1 == _candidate_count(prefix)
    # resume healed the torn tail and re-extended the journal in full
    assert len(journal_path.read_text().splitlines()) == total_lines

    # kill #2 (a later point, in the journal already extended by resume
    # #1), proving multi-kill/resume chains converge to the same run
    prefix2 = _kill_at(journal_path, total_lines - 3)
    with RunJournal.resume(run_dir, **_explore_manifest()) as journal:
        summary2, replayed2, seq2 = run_explore(
            tmp_path / "resume2.jsonl", journal=journal
        )
    assert summary2 == ref_summary
    assert seq2 == ref_seq
    assert replayed2 == _candidate_count(prefix2)
    assert len(journal_path.read_text().splitlines()) == total_lines


def test_explore_resume_of_complete_journal_appends_nothing(tmp_path):
    ref_summary, _, ref_seq = run_explore(tmp_path / "ref.jsonl")
    run_dir = tmp_path / "run"
    with RunJournal.create(run_dir, **_explore_manifest()) as journal:
        run_explore(tmp_path / "journaled.jsonl", journal=journal)
    journal_path = run_dir / JOURNAL_FILENAME
    before = journal_path.read_bytes()
    with RunJournal.resume(run_dir, **_explore_manifest()) as journal:
        summary, replayed, seq = run_explore(
            tmp_path / "resumed.jsonl", journal=journal
        )
    assert (summary, seq) == (ref_summary, ref_seq)
    assert replayed == _candidate_count(
        [json.loads(l)["entry"] for l in before.decode().splitlines()]
    )
    # pure replay: the journal file is byte-identical afterwards
    assert journal_path.read_bytes() == before


def test_robust_kill_resume_is_bit_identical(tmp_path):
    ref_summary, ref_replayed, ref_seq = run_robust(tmp_path / "ref.jsonl")
    assert ref_replayed == 0

    run_dir = tmp_path / "run"
    with RunJournal.create(run_dir, **_robust_manifest()) as journal:
        full_summary, _, full_seq = run_robust(
            tmp_path / "journaled.jsonl", journal=journal
        )
    assert full_summary == ref_summary
    assert full_seq == ref_seq
    journal_path = run_dir / JOURNAL_FILENAME
    total_lines = len(journal_path.read_text().splitlines())
    assert total_lines > 3

    prefix = _kill_at(journal_path, 2)
    with RunJournal.resume(run_dir, **_robust_manifest()) as journal:
        summary, replayed, seq = run_robust(
            tmp_path / "resumed.jsonl", journal=journal
        )
    assert summary == ref_summary
    assert seq == ref_seq
    # each journaled robust candidate holds 1 healthy + ensemble-size
    # fault-world records, all of which must be answered by replay
    n_candidates = _candidate_count(prefix, kind="robust_candidate")
    assert replayed == n_candidates * (1 + ROBUST_ENSEMBLE_SIZE)
    assert len(journal_path.read_text().splitlines()) == total_lines


def test_resume_with_wrong_campaign_arguments_is_fatal(tmp_path):
    run_dir = tmp_path / "run"
    with RunJournal.create(run_dir, **_explore_manifest()) as journal:
        run_explore(tmp_path / "journaled.jsonl", journal=journal)
    wrong = dict(_explore_manifest(), pdr_min=0.5)
    with pytest.raises(JournalError, match="manifest mismatch"):
        RunJournal.resume(run_dir, **wrong)


class TestEventLog:
    """The generic CRC-framed append-only log behind the lease queue."""

    def test_round_trip_and_fsync_framing(self, tmp_path):
        from repro.core.journal import EventLog

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.append({"kind": "lease", "shard": 0})
            log.append({"kind": "commit", "shard": 0, "crc": "aa"})
        with EventLog(path) as log:
            kinds = [e["kind"] for e in log.entries]
            assert kinds == ["lease", "commit"]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        from repro.core.journal import EventLog

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.append({"kind": "lease", "shard": 0})
        intact = path.stat().st_size
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "commit", "sha')  # killed mid-write
        with EventLog(path) as log:
            assert [e["kind"] for e in log.entries] == ["lease"]
            # the torn bytes are gone from disk, not just skipped
            assert path.stat().st_size == intact
            log.append({"kind": "commit", "shard": 0})
        with EventLog(path) as log:
            assert [e["kind"] for e in log.entries] == ["lease", "commit"]

    def test_corrupt_frame_inside_the_prefix_is_fatal(self, tmp_path):
        from repro.core.journal import EventLog

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.append({"kind": "lease", "shard": 0})
            log.append({"kind": "commit", "shard": 0})
        lines = path.read_text().splitlines(keepends=True)
        # flip a byte inside the *first* frame: the fsynced prefix
        # itself is damaged, which is not survivable (unlike a torn
        # tail) and must refuse the whole log
        path.write_text(lines[0].replace("lease", "laese") + lines[1])
        with pytest.raises(JournalError, match="corrupt journal line"):
            EventLog(path)

    def test_payload_crc_is_canonical(self):
        from repro.core.journal import payload_crc

        a = payload_crc({"b": 1, "a": [1, 2]})
        b = payload_crc({"a": [1, 2], "b": 1})
        assert a == b and len(a) == 8 and a != payload_crc({"a": [2, 1]})


class TestEventLogFollower:
    """The read-only incremental tail behind coordinator standbys."""

    def _records(self, n=4):
        return [{"kind": "state", "seq": i, "pad": "x" * i} for i in
                range(n)]

    def _blob(self, tmp_path, records):
        from repro.core.journal import EventLog

        path = tmp_path / "full.jsonl"
        with EventLog(path) as log:
            for record in records:
                log.append(record)
        return path.read_bytes()

    def test_tails_a_live_writer_incrementally(self, tmp_path):
        from repro.core.journal import EventLog

        path = tmp_path / "events.jsonl"
        follower = EventLog.follow(path)
        assert follower.poll() == []  # not created yet: empty, no error
        with EventLog(path) as log:
            log.append({"kind": "a"})
            assert [e["kind"] for e in follower.poll()] == ["a"]
            assert follower.poll() == []  # nothing new
            log.append({"kind": "b"})
            log.append({"kind": "c"})
            assert [e["kind"] for e in follower.poll()] == ["b", "c"]

    def test_every_truncation_point_yields_only_whole_records(
        self, tmp_path
    ):
        """Property test: cut the log at *every* byte offset.  A fresh
        follower over the cut file must surface exactly the records
        whose full ``json + "\\n"`` line fits in the prefix — never a
        partial or corrupt record — and must pick up the rest once the
        missing bytes land."""
        from repro.core.journal import EventLog

        records = self._records()
        blob = self._blob(tmp_path, records)
        boundaries = [
            i + 1 for i, byte in enumerate(blob) if byte == ord("\n")
        ]
        path = tmp_path / "cut.jsonl"
        for cut in range(len(blob) + 1):
            path.write_bytes(blob[:cut])
            follower = EventLog.follow(path)
            seen = follower.poll()
            whole = sum(1 for b in boundaries if b <= cut)
            assert seen == records[:whole], f"cut at byte {cut}"
            # the writer finishes the interrupted append: the follower
            # resumes mid-line and surfaces the remainder exactly once
            path.write_bytes(blob)
            assert seen + follower.poll() == records, f"cut at {cut}"

    def test_complete_but_corrupt_line_is_withheld_not_surfaced(
        self, tmp_path
    ):
        from repro.core.journal import EventLog

        records = self._records(2)
        blob = self._blob(tmp_path, records)
        first_end = blob.index(b"\n") + 1
        path = tmp_path / "corrupt.jsonl"
        # newline-terminated line whose CRC does not match its entry
        path.write_bytes(
            blob[:first_end]
            + blob[first_end:].replace(b'"seq": 1', b'"seq": 9')
        )
        follower = EventLog.follow(path)
        assert follower.poll() == records[:1]
        assert follower.poll() == []  # corrupt line still withheld
        # the damage heals (writer truncate-and-rewrite): full tail lands
        path.write_bytes(blob)
        assert follower.poll() == records[1:]

    def test_shrunk_file_realigns_from_the_start(self, tmp_path):
        from repro.core.journal import EventLog

        records = self._records(3)
        blob = self._blob(tmp_path, records)
        path = tmp_path / "shrink.jsonl"
        path.write_bytes(blob)
        follower = EventLog.follow(path)
        assert follower.poll() == records
        # the log is replaced with a shorter one (writer restart)
        second = self._records(1)
        path.write_bytes(self._blob(tmp_path / "alt", second))
        assert follower.poll() == second

    def test_follower_never_mutates_the_file(self, tmp_path):
        from repro.core.journal import EventLog

        blob = self._blob(tmp_path, self._records(2)) + b'{"torn'
        path = tmp_path / "readonly.jsonl"
        path.write_bytes(blob)
        follower = EventLog.follow(path)
        follower.poll()
        follower.poll()
        # an EventLog would truncate the torn tail; the follower must not
        assert path.read_bytes() == blob
