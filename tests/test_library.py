"""Tests for the component library: radios (Table 1), batteries, options."""

import pytest

from repro.library.batteries import (
    BATTERY_CATALOG,
    COORDINATOR_PACK,
    CR2032,
    battery_by_name,
)
from repro.library.locations import DESIGN_EXAMPLE_ROLES, describe_placement
from repro.library.mac_options import (
    CsmaAccessMode,
    MacKind,
    MacOptions,
    RoutingKind,
    RoutingOptions,
)
from repro.library.radios import CC2650, RADIO_CATALOG, radio_by_name


class TestTable1Transcription:
    """The CC2650 entry must match the paper's Table 1 exactly."""

    def test_carrier_and_bitrate(self):
        assert CC2650.carrier_hz == 2.4e9
        assert CC2650.bit_rate_bps == 1024e3

    def test_receiver(self):
        assert CC2650.sensitivity_dbm == -97.0
        assert CC2650.rx_power_mw == 17.7

    def test_tx_modes(self):
        expected = {"p1": (-20.0, 9.55), "p2": (-10.0, 11.56), "p3": (0.0, 18.3)}
        assert len(CC2650.tx_modes) == 3
        for mode in CC2650.tx_modes:
            dbm, mw = expected[mode.name]
            assert mode.output_dbm == dbm
            assert mode.power_mw == mw

    def test_packet_airtime_matches_section41(self):
        # 100-byte packets at 1024 kbps: Tpkt = 800/1024e3 ~ 0.78 ms,
        # which must fit the 1 ms TDMA slot of the design example.
        tpkt = CC2650.packet_airtime_s(100)
        assert tpkt == pytest.approx(800 / 1024e3)
        assert tpkt < 1e-3

    def test_tx_mode_lookup(self):
        assert CC2650.tx_mode("p2").output_dbm == -10.0
        assert CC2650.tx_mode_by_dbm(0.0).name == "p3"
        with pytest.raises(KeyError):
            CC2650.tx_mode("p9")
        with pytest.raises(KeyError):
            CC2650.tx_mode_by_dbm(5.0)

    def test_zero_length_packet_rejected(self):
        with pytest.raises(ValueError):
            CC2650.packet_airtime_s(0)

    def test_catalog_lookup(self):
        assert radio_by_name("CC2650") is CC2650
        assert len(RADIO_CATALOG) >= 3
        with pytest.raises(KeyError, match="unknown radio"):
            radio_by_name("nRF9999")


class TestBatteries:
    def test_cr2032_energy(self):
        # 225 mAh at 3 V = 675 mWh = 2430 J.
        assert CR2032.energy_mwh == pytest.approx(675.0)
        assert CR2032.energy_j == pytest.approx(2430.0)

    def test_lifetime_days(self):
        # 675 mWh at 1 mW -> 675 h ~ 28.1 days.
        assert CR2032.lifetime_days(1.0) == pytest.approx(675.0 / 24.0)

    def test_lifetime_seconds_consistent(self):
        assert CR2032.lifetime_s(2.0) == pytest.approx(
            CR2032.lifetime_days(2.0) * 86400.0
        )

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            CR2032.lifetime_days(0.0)

    def test_coordinator_pack_dwarfs_cr2032(self):
        assert COORDINATOR_PACK.energy_mwh > 20 * CR2032.energy_mwh

    def test_catalog(self):
        assert battery_by_name("CR2032") is CR2032
        assert "CR2032" in BATTERY_CATALOG
        with pytest.raises(KeyError):
            battery_by_name("AAA")


class TestMacOptions:
    def test_defaults_match_design_example(self):
        opts = MacOptions(kind=MacKind.TDMA)
        assert opts.slot_s == 1e-3
        assert opts.access_mode is CsmaAccessMode.NON_PERSISTENT

    def test_validation(self):
        with pytest.raises(ValueError):
            MacOptions(kind=MacKind.CSMA, buffer_size=0)
        with pytest.raises(ValueError):
            MacOptions(kind=MacKind.TDMA, slot_s=0.0)
        with pytest.raises(ValueError):
            MacOptions(
                kind=MacKind.CSMA,
                csma_backoff_min_s=5e-3,
                csma_backoff_max_s=1e-3,
            )


class TestRoutingOptions:
    def test_prt_encoding(self):
        assert RoutingKind.STAR.prt == 0
        assert RoutingKind.MESH.prt == 1

    def test_retx_star_is_one(self):
        opts = RoutingOptions(kind=RoutingKind.STAR)
        assert opts.retx_count(4) == 1
        assert opts.retx_count(6) == 1

    def test_retx_two_hop_matches_paper_formula(self):
        """Sec. 4.1: for a two-hop configuration NreTx = N^2 - 4N + 5."""
        opts = RoutingOptions(kind=RoutingKind.MESH, max_hops=2)
        for n in range(4, 8):
            assert opts.retx_count(n) == n * n - 4 * n + 5

    def test_retx_one_hop_single_relay_ring(self):
        # N_hops = 1: the origin transmits, every node except origin and
        # destination relays once -> 1 + (N - 2) = N - 1.
        opts = RoutingOptions(kind=RoutingKind.MESH, max_hops=1)
        for n in range(4, 8):
            assert opts.retx_count(n) == n - 1

    def test_retx_grows_with_hops(self):
        two = RoutingOptions(kind=RoutingKind.MESH, max_hops=2)
        three = RoutingOptions(kind=RoutingKind.MESH, max_hops=3)
        assert three.retx_count(5) > two.retx_count(5)

    def test_hop_validation(self):
        with pytest.raises(ValueError):
            RoutingOptions(kind=RoutingKind.MESH, max_hops=0)


class TestLocations:
    def test_roles_cover_section41(self):
        names = {r.name for r in DESIGN_EXAMPLE_ROLES}
        assert names == {"respiration", "gait_hip", "gait_foot", "vitals_wrist"}

    def test_describe_placement(self):
        assert describe_placement((0, 1, 3, 6)) == "[chest,hipL,ankL,wriR]"

    def test_describe_placement_sorts(self):
        assert describe_placement((6, 0)) == "[chest,wriR]"
