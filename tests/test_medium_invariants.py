"""Conservation and sanity invariants of the shared medium, checked with
randomized traffic patterns.

These guard the PHY bookkeeping Algorithm 1's power metric rests on: every
decoded packet must correspond to airtime someone paid for, receptions can
never exceed what was physically broadcast, and energy time accounting
matches the event trace exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.radios import CC2650
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.stats import NodeStats

AIRTIME = CC2650.packet_airtime_s(100)

#: Torso locations with universally strong links at 0 dBm.
STRONG = (0, 1, 2)
#: A mixed set including weak limb links.
MIXED = (0, 1, 3, 8)


def build(locations, tx_dbm=0.0, seed=0, sigma=0.0, shadow=0.0):
    sim = Simulator()
    channel = Channel(
        RngStreams(seed=seed),
        fading_params=FadingParameters(
            sigma_db=sigma, shadow_fraction=shadow
        ),
    )
    medium = Medium(sim, channel)
    radios, stats = {}, {}
    for loc in locations:
        stats[loc] = NodeStats(loc)
        radios[loc] = Radio(
            sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(tx_dbm), stats[loc]
        )
    return sim, radios, stats


@st.composite
def traffic_patterns(draw):
    """(sender, start_time) pairs over a short horizon."""
    n = draw(st.integers(1, 25))
    events = []
    for k in range(n):
        sender = draw(st.sampled_from([0, 1, 2]))
        start = draw(st.floats(0.0, 0.05, allow_nan=False))
        events.append((sender, start, k))
    return events


class TestConservation:
    @given(pattern=traffic_patterns())
    @settings(max_examples=30, deadline=None)
    def test_rx_events_bounded_by_broadcast_volume(self, pattern):
        sim, radios, stats = build(STRONG)
        busy_until = {loc: 0.0 for loc in STRONG}
        scheduled = 0
        for sender, start, seq in pattern:
            # Respect half duplex at schedule level (the radio raises on
            # violations by design).
            if start < busy_until[sender]:
                continue
            busy_until[sender] = start + AIRTIME
            packet = Packet(
                origin=sender, seq=seq,
                destination=(sender + 1) % 3, length_bytes=100,
            ).originated()
            sim.schedule(start, radios[sender].transmit, packet)
            scheduled += 1
        sim.run()
        total_tx = sum(s.transmissions for s in stats.values())
        total_rx = sum(s.receptions for s in stats.values())
        total_collisions = sum(s.collisions_seen for s in stats.values())
        total_below = sum(s.below_sensitivity for s in stats.values())
        assert total_tx == scheduled
        # Every broadcast is accounted at each other node exactly once:
        # decoded, collided, or below sensitivity... except at nodes that
        # were themselves transmitting at the overlap (half duplex), whose
        # copies are recorded as collisions too.
        assert total_rx + total_collisions + total_below == total_tx * 2

    @given(pattern=traffic_patterns())
    @settings(max_examples=20, deadline=None)
    def test_energy_time_consistent_with_event_counts(self, pattern):
        sim, radios, stats = build(STRONG)
        busy_until = {loc: 0.0 for loc in STRONG}
        for sender, start, seq in pattern:
            if start < busy_until[sender]:
                continue
            busy_until[sender] = start + AIRTIME
            packet = Packet(
                origin=sender, seq=seq,
                destination=(sender + 1) % 3, length_bytes=100,
            ).originated()
            sim.schedule(start, radios[sender].transmit, packet)
        sim.run()
        for loc in STRONG:
            s = stats[loc]
            assert s.tx_seconds == pytest.approx(s.transmissions * AIRTIME)
            # RX time is paid for decoded and collided copies alike.
            assert s.rx_seconds == pytest.approx(
                (s.receptions + s.collisions_seen) * AIRTIME
            )

    def test_weak_links_cost_nothing_at_receiver(self):
        sim, radios, stats = build(MIXED, tx_dbm=-20.0)
        packet = Packet(origin=3, seq=0, destination=8,
                        length_bytes=100).originated()
        radios[3].transmit(packet)
        sim.run()
        # head (8) cannot hear ankle (3) at -20 dBm: no rx energy anywhere
        # the budget fails.
        assert stats[8].rx_seconds == 0.0
        assert stats[8].below_sensitivity == 1

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_fading_channel_preserves_accounting_identity(self, seed):
        sim, radios, stats = build(MIXED, seed=seed, sigma=6.0, shadow=0.05)
        for k in range(10):
            sender = MIXED[k % len(MIXED)]
            packet = Packet(
                origin=sender, seq=k,
                destination=MIXED[(k + 1) % len(MIXED)], length_bytes=100,
            ).originated()
            sim.schedule(0.01 * k, radios[sender].transmit, packet)
        sim.run()
        total_tx = sum(s.transmissions for s in stats.values())
        accounted = sum(
            s.receptions + s.collisions_seen + s.below_sensitivity
            for s in stats.values()
        )
        assert accounted == total_tx * (len(MIXED) - 1)
