"""Tests for the branch-and-bound MILP solver, including randomized
cross-checks against scipy's HiGHS MILP."""

import numpy as np
import pytest

from repro.milp import Model, SolveStatus, solve_with_scipy
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.expr import LinExpr


def knapsack(values, weights, capacity, sense="max"):
    m = Model("knapsack", sense=sense)
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.set_objective(LinExpr.sum_of(v * x for v, x in zip(values, xs)))
    m.add_constraint(
        LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= capacity
    )
    return m, xs


class TestBasics:
    def test_knapsack(self):
        m, xs = knapsack([3, 5, 4, 2], [2, 4, 3, 1], 6)
        result = m.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(9.0)
        chosen = [result.value(x) for x in xs]
        assert chosen == [1.0, 0.0, 1.0, 1.0]

    def test_pure_lp_passthrough(self):
        m = Model("lp")
        x = m.add_var("x", lb=1.5, ub=9.0)
        m.set_objective(x)
        result = m.solve()
        assert result.objective == pytest.approx(1.5)
        assert result.values[0] == pytest.approx(1.5)

    def test_integer_rounding_exact(self):
        m = Model("t", sense="max")
        x = m.add_var("x", lb=0, ub=7, is_integer=True)
        m.add_constraint(2 * x <= 7)  # LP optimum at 3.5
        m.set_objective(x)
        result = m.solve()
        assert result.objective == pytest.approx(3.0)
        assert result.value(x) == 3.0

    def test_infeasible_milp(self):
        m = Model("t")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y >= 3)
        result = m.solve()
        assert result.status is SolveStatus.INFEASIBLE

    def test_infeasible_by_integrality(self):
        # LP-feasible only at x = 0.5: integrality makes it infeasible.
        m = Model("t")
        x = m.add_binary("x")
        m.add_constraint(2 * x == 1)
        result = m.solve()
        assert result.status is SolveStatus.INFEASIBLE

    def test_equality_constrained_assignment(self):
        # Choose exactly 2 of 4 items, minimize cost.
        m = Model("t")
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        costs = [5.0, 1.0, 3.0, 2.0]
        m.add_constraint(LinExpr.sum_of(xs) == 2)
        m.set_objective(LinExpr.sum_of(c * x for c, x in zip(costs, xs)))
        result = m.solve()
        assert result.objective == pytest.approx(3.0)
        assert result.value(xs[1]) == 1.0 and result.value(xs[3]) == 1.0

    def test_unbounded_integer_rejected(self):
        m = Model("t")
        m.add_var("x", is_integer=True)  # ub = inf
        with pytest.raises(ValueError, match="finite bounds"):
            m.solve()

    def test_mixed_integer_continuous(self):
        # min 3x + y  s.t. x + y >= 2.5, x integer in [0,5], y in [0,1].
        m = Model("t")
        x = m.add_var("x", ub=5, is_integer=True)
        y = m.add_var("y", ub=1.0)
        m.add_constraint(x + y >= 2.5)
        m.set_objective(3 * x + y)
        result = m.solve()
        assert result.is_optimal
        # x = 2, y = 0.5 -> 6.5 beats x = 3, y = 0 -> 9.
        assert result.objective == pytest.approx(6.5)

    def test_node_limit_reported(self):
        m, _ = knapsack(list(range(1, 13)), list(range(1, 13)), 30)
        result = BranchAndBoundSolver(max_nodes=1).solve(m)
        assert result.status in (SolveStatus.NODE_LIMIT, SolveStatus.OPTIMAL)

    def test_strict_epsilon_cut_not_violated(self):
        # Regression: rounding a near-integral LP point must not yield an
        # incumbent that violates an epsilon-deep constraint (the explorer's
        # strict power cuts exposed this).
        m = Model("t")
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        costs = [1.0, 2.0, 3.0]
        obj = LinExpr.sum_of(c * x for c, x in zip(costs, xs))
        m.add_constraint(LinExpr.sum_of(xs) == 1)
        m.add_constraint(obj >= 1.0 + 1e-6)  # excludes the cheapest choice
        m.set_objective(obj)
        result = m.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)


class TestAgainstScipy:
    def _random_binary_model(self, rng):
        n = int(rng.integers(3, 9))
        m = Model("rand", sense="min" if rng.random() < 0.5 else "max")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        m.set_objective(
            LinExpr.sum_of(float(rng.normal()) * x for x in xs)
        )
        for _ in range(int(rng.integers(1, 4))):
            coeffs = rng.integers(-3, 4, size=n).astype(float)
            rhs = float(rng.integers(-2, n + 1))
            m.add_constraint(
                LinExpr.sum_of(c * x for c, x in zip(coeffs, xs)) <= rhs
            )
        return m

    def test_randomized_agreement_with_highs(self):
        rng = np.random.default_rng(2024)
        for trial in range(40):
            m = self._random_binary_model(rng)
            ours = m.solve()
            ref = solve_with_scipy(m)
            assert ours.status == ref.status, f"trial {trial}"
            if ours.is_optimal:
                assert ours.objective == pytest.approx(
                    ref.objective, abs=1e-6
                ), f"trial {trial}"

    def test_randomized_mixed_integer_agreement(self):
        rng = np.random.default_rng(77)
        for trial in range(25):
            n_int, n_cont = int(rng.integers(2, 5)), int(rng.integers(1, 4))
            m = Model("mixed")
            xs = [
                m.add_var(f"i{k}", lb=0, ub=4, is_integer=True)
                for k in range(n_int)
            ]
            ys = [m.add_var(f"c{k}", lb=0, ub=2.5) for k in range(n_cont)]
            allv = xs + ys
            m.set_objective(
                LinExpr.sum_of(float(rng.uniform(0.5, 3)) * v for v in allv)
            )
            coeffs = rng.uniform(0.5, 2.0, size=len(allv))
            m.add_constraint(
                LinExpr.sum_of(c * v for c, v in zip(coeffs, allv)) >= 4.0
            )
            ours = m.solve()
            ref = solve_with_scipy(m)
            assert ours.status == ref.status, f"trial {trial}"
            if ours.is_optimal:
                assert ours.objective == pytest.approx(
                    ref.objective, abs=1e-6
                ), f"trial {trial}"

    def test_solutions_are_feasible_points(self):
        rng = np.random.default_rng(31)
        for _ in range(20):
            m = self._random_binary_model(rng)
            result = m.solve()
            if result.is_optimal:
                assert m.is_feasible_point(result.values)
