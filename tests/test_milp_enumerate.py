"""Tests for optimum-set enumeration (the RunMILP set semantics)."""

import math

import pytest

from repro.milp import Model, SolveStatus, enumerate_optimal_solutions
from repro.milp.enumerate_optima import solution_values_by_name
from repro.milp.expr import LinExpr


class TestEnumeration:
    def test_choose_two_of_four_identical(self):
        m = Model("t")
        ys = [m.add_binary(f"y{i}") for i in range(4)]
        m.add_constraint(LinExpr.sum_of(ys) == 2)
        m.set_objective(LinExpr.sum_of(ys))
        status, solutions, optimum = enumerate_optimal_solutions(m)
        assert status is SolveStatus.OPTIMAL
        assert optimum == pytest.approx(2.0)
        assert len(solutions) == math.comb(4, 2)
        # All solutions distinct as assignments.
        keys = {
            tuple(int(round(s.values[y.index])) for y in ys) for s in solutions
        }
        assert len(keys) == len(solutions)

    def test_unique_optimum_enumerates_once(self):
        m = Model("t", sense="max")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.set_objective(2 * x + y)
        status, solutions, optimum = enumerate_optimal_solutions(m)
        assert len(solutions) == 1
        assert optimum == pytest.approx(3.0)

    def test_max_solutions_cap(self):
        m = Model("t")
        ys = [m.add_binary(f"y{i}") for i in range(6)]
        m.add_constraint(LinExpr.sum_of(ys) == 3)
        m.set_objective(LinExpr(constant=0.0))
        _status, solutions, _opt = enumerate_optimal_solutions(
            m, max_solutions=5
        )
        assert len(solutions) == 5

    def test_infeasible_model(self):
        m = Model("t")
        x = m.add_binary("x")
        m.add_constraint(x >= 2)
        status, solutions, optimum = enumerate_optimal_solutions(m)
        assert status is SolveStatus.INFEASIBLE
        assert solutions == [] and optimum is None

    def test_distinguish_subset_collapses_ties(self):
        # Two binaries, objective only on x; enumerating with keys on x
        # should yield one solution even though y is free.
        m = Model("t")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.set_objective(x)
        _status, solutions, _opt = enumerate_optimal_solutions(
            m, distinguish_vars=[x]
        )
        assert len(solutions) == 1
        # With keys on both, the free y doubles the set.
        _status, both, _opt = enumerate_optimal_solutions(
            m, distinguish_vars=[x, y]
        )
        assert len(both) == 2

    def test_original_model_not_mutated(self):
        m = Model("t")
        ys = [m.add_binary(f"y{i}") for i in range(3)]
        m.add_constraint(LinExpr.sum_of(ys) == 1)
        m.set_objective(LinExpr.sum_of(ys))
        n_before = m.num_constraints
        enumerate_optimal_solutions(m)
        assert m.num_constraints == n_before

    def test_no_binaries_returns_single_solution(self):
        m = Model("t")
        x = m.add_var("x", lb=1, ub=2)
        m.set_objective(x)
        status, solutions, optimum = enumerate_optimal_solutions(m)
        assert status is SolveStatus.OPTIMAL
        assert len(solutions) == 1
        assert optimum == pytest.approx(1.0)

    def test_solution_values_by_name(self):
        m = Model("t", sense="max")
        x = m.add_binary("pick")
        m.set_objective(x)
        _status, solutions, _opt = enumerate_optimal_solutions(m)
        named = solution_values_by_name(m, solutions[0])
        assert named == {"pick": 1.0}

    def test_enumeration_respects_constraints(self):
        # Optima must all satisfy the model constraints exactly.
        m = Model("t")
        ys = [m.add_binary(f"y{i}") for i in range(5)]
        m.add_constraint(LinExpr.sum_of(ys) == 2)
        m.add_constraint(ys[0] + ys[1] <= 1)  # not both of the first two
        m.set_objective(LinExpr.sum_of(ys))
        _status, solutions, _opt = enumerate_optimal_solutions(m)
        assert len(solutions) == math.comb(5, 2) - 1
        for s in solutions:
            assert m.is_feasible_point(
                {i: s.values[i] for i in range(5)}
            )
