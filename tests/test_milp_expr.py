"""Tests for the MILP expression layer (variables, LinExpr, comparisons)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.milp.expr import INF, ConstraintSpec, LinExpr, Var
from repro.milp.model import Model


@pytest.fixture()
def model():
    return Model("t")


class TestVar:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Var(0, "x", lb=2.0, ub=1.0)

    def test_binary_classification(self, model):
        b = model.add_binary("b")
        assert b.is_binary and b.is_integer
        c = model.add_var("c", lb=0, ub=1)
        assert not c.is_binary  # continuous in [0,1] is not binary
        d = model.add_var("d", lb=0, ub=2, is_integer=True)
        assert d.is_integer and not d.is_binary

    def test_default_bounds(self, model):
        x = model.add_var("x")
        assert x.lb == 0.0 and x.ub == INF

    def test_vars_are_hashable_by_identity(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        assert len({x, y}) == 2

    def test_to_expr_roundtrip(self, model):
        x = model.add_var("x")
        expr = x.to_expr()
        assert expr.terms == {x.index: 1.0}
        assert expr.constant == 0.0


class TestLinExprArithmetic:
    def test_addition_merges_terms(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = x + y + x
        assert expr.terms == {x.index: 2.0, y.index: 1.0}

    def test_subtraction_cancels_to_zero_terms(self, model):
        x = model.add_var("x")
        expr = (x + 3) - x
        assert expr.is_constant
        assert expr.constant == 3.0

    def test_scalar_multiplication_and_division(self, model):
        x = model.add_var("x")
        expr = (4 * x + 2) / 2
        assert expr.terms == {x.index: 2.0}
        assert expr.constant == 1.0

    def test_negation(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = -(x - y + 1)
        assert expr.terms == {x.index: -1.0, y.index: 1.0}
        assert expr.constant == -1.0

    def test_rsub(self, model):
        x = model.add_var("x")
        expr = 5 - x
        assert expr.terms == {x.index: -1.0}
        assert expr.constant == 5.0

    def test_multiplying_expressions_rejected(self, model):
        x = model.add_var("x")
        with pytest.raises(TypeError):
            x.to_expr() * x.to_expr()  # type: ignore[operator]

    def test_division_by_zero_rejected(self, model):
        x = model.add_var("x")
        with pytest.raises(ZeroDivisionError):
            x.to_expr() / 0

    def test_sum_of(self, model):
        xs = [model.add_var(f"x{i}") for i in range(5)]
        expr = LinExpr.sum_of(xs)
        assert expr.terms == {x.index: 1.0 for x in xs}

    def test_sum_of_mixed_operands(self, model):
        x = model.add_var("x")
        expr = LinExpr.sum_of([x, 2.5, 3 * x])
        assert expr.terms == {x.index: 4.0}
        assert expr.constant == 2.5

    def test_evaluate(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = 2 * x - y + 7
        assert expr.evaluate({x.index: 3.0, y.index: 1.0}) == pytest.approx(12.0)

    def test_zero_coefficients_dropped(self, model):
        x = model.add_var("x")
        expr = 0 * x + 1
        assert expr.terms == {}

    @given(
        a=st.floats(-100, 100, allow_nan=False),
        b=st.floats(-100, 100, allow_nan=False),
        c=st.floats(-100, 100, allow_nan=False),
    )
    def test_affine_evaluation_matches_by_hand(self, a, b, c):
        model = Model("h")
        x, y = model.add_var("x"), model.add_var("y")
        expr = a * x + b * y + c
        point = {x.index: 1.5, y.index: -2.0}
        assert expr.evaluate(point) == pytest.approx(a * 1.5 + b * -2.0 + c)


class TestComparisons:
    def test_le_produces_spec(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        spec = x + y <= 3
        assert isinstance(spec, ConstraintSpec)
        coeffs, sense, rhs = spec.as_row()
        assert sense == "<=" and rhs == 3.0
        assert coeffs == {x.index: 1.0, y.index: 1.0}

    def test_ge_moves_rhs_variables_left(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        coeffs, sense, rhs = (x >= y + 1).as_row()
        assert sense == ">="
        assert coeffs == {x.index: 1.0, y.index: -1.0}
        assert rhs == 1.0

    def test_eq_between_expressions(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        spec = (2 * x) == (y - 4)
        coeffs, sense, rhs = spec.as_row()
        assert sense == "=="
        assert rhs == -4.0

    def test_bad_sense_rejected(self, model):
        x = model.add_var("x")
        with pytest.raises(ValueError):
            ConstraintSpec(x.to_expr(), "<")

    def test_var_compared_to_number(self, model):
        x = model.add_var("x")
        coeffs, sense, rhs = (x <= 5).as_row()
        assert coeffs == {x.index: 1.0} and sense == "<=" and rhs == 5.0


class TestFromOperand:
    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr.from_operand("nope")  # type: ignore[arg-type]

    def test_accepts_number(self):
        expr = LinExpr.from_operand(4)
        assert expr.is_constant and expr.constant == 4.0

    def test_passthrough_for_expr(self):
        expr = LinExpr({0: 1.0}, 2.0)
        assert LinExpr.from_operand(expr) is expr
