"""Tests for the simplex LP solver, including randomized cross-checks
against scipy.optimize.linprog."""

import math

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.milp.simplex import (
    LinearProgram,
    SimplexSolver,
    SimplexStatus,
    solve_lp,
)


def lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None, c0=0.0):
    c = np.asarray(c, dtype=float)
    n = len(c)
    return LinearProgram(
        c=c,
        a_ub=np.asarray(a_ub if a_ub is not None else np.zeros((0, n))),
        b_ub=np.asarray(b_ub if b_ub is not None else np.zeros(0)),
        a_eq=np.asarray(a_eq if a_eq is not None else np.zeros((0, n))),
        b_eq=np.asarray(b_eq if b_eq is not None else np.zeros(0)),
        bounds=np.asarray(
            bounds if bounds is not None else [[0.0, math.inf]] * n
        ),
        c0=c0,
    )


class TestBasicLPs:
    def test_trivial_minimum_at_origin(self):
        result = solve_lp(lp([1.0, 1.0]))
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)

    def test_simple_two_variable(self):
        # min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  => x=2? check: best y=2, x=2 -> -6
        result = solve_lp(
            lp([-1.0, -2.0], a_ub=[[1, 1]], b_ub=[4], bounds=[[0, 3], [0, 2]])
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(-6.0)
        assert result.x[1] == pytest.approx(2.0)

    def test_equality_constraint(self):
        # min x + y s.t. x + 2y == 4, x,y >= 0 -> y = 2, obj 2
        result = solve_lp(lp([1.0, 1.0], a_eq=[[1, 2]], b_eq=[4]))
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_unbounded(self):
        result = solve_lp(lp([-1.0]))
        assert result.status is SimplexStatus.UNBOUNDED

    def test_infeasible(self):
        # x <= -1 with x >= 0.
        result = solve_lp(lp([1.0], a_ub=[[1.0]], b_ub=[-1.0]))
        assert result.status is SimplexStatus.INFEASIBLE

    def test_contradictory_equalities(self):
        result = solve_lp(lp([0.0], a_eq=[[1.0], [1.0]], b_eq=[1.0, 2.0]))
        assert result.status is SimplexStatus.INFEASIBLE

    def test_objective_offset(self):
        result = solve_lp(lp([1.0], c0=10.0, bounds=[[2, 5]]))
        assert result.objective == pytest.approx(12.0)

    def test_negative_lower_bounds(self):
        # min x with x in [-3, 5]
        result = solve_lp(lp([1.0], bounds=[[-3, 5]]))
        assert result.is_optimal
        assert result.x[0] == pytest.approx(-3.0)

    def test_free_variable(self):
        # min x + y, x free, y >= 0, x >= -7 via constraint
        result = solve_lp(
            lp(
                [1.0, 1.0],
                a_ub=[[-1.0, 0.0]],
                b_ub=[7.0],
                bounds=[[-math.inf, math.inf], [0, math.inf]],
            )
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(-7.0)

    def test_upper_bounded_free_variable(self):
        # max x (min -x) with x <= 4 and no lower bound, plus x >= 0 row.
        result = solve_lp(
            lp(
                [-1.0],
                a_ub=[[-1.0]],
                b_ub=[0.0],
                bounds=[[-math.inf, 4.0]],
            )
        )
        assert result.is_optimal
        assert result.x[0] == pytest.approx(4.0)

    def test_redundant_equalities_are_fine(self):
        result = solve_lp(
            lp([1.0, 1.0], a_eq=[[1, 1], [2, 2]], b_eq=[2.0, 4.0])
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_degenerate_problem_terminates(self):
        # Klee-Minty-flavoured degenerate rows; just require termination.
        a = [[1, 0, 0], [1, 1, 0], [1, 1, 1], [0, 1, 1], [0, 0, 1]]
        b = [1, 1, 1, 1, 1]
        result = solve_lp(lp([-1.0, -1.0, -1.0], a_ub=a, b_ub=b))
        assert result.is_optimal

    def test_empty_constraint_matrix_with_bounds(self):
        result = solve_lp(lp([2.0, -3.0], bounds=[[0, 1], [0, 1]]))
        assert result.is_optimal
        assert result.objective == pytest.approx(-3.0)


class TestAgainstScipy:
    @staticmethod
    def _random_lp(rng):
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 6))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m, n))
        # Build around a known feasible interior point so most instances
        # are feasible and bounded.
        x0 = rng.uniform(0.2, 1.0, size=n)
        b_ub = a_ub @ x0 + rng.uniform(0.1, 1.0, size=m)
        bounds = np.column_stack([np.zeros(n), np.full(n, 3.0)])
        return lp(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)

    def test_randomized_agreement(self):
        rng = np.random.default_rng(12345)
        solver = SimplexSolver()
        for trial in range(60):
            problem = self._random_lp(rng)
            ours = solver.solve(problem)
            ref = linprog(
                problem.c,
                A_ub=problem.a_ub,
                b_ub=problem.b_ub,
                bounds=[(lo, hi) for lo, hi in problem.bounds],
                method="highs",
            )
            assert ours.is_optimal == ref.success, f"trial {trial}"
            if ref.success:
                assert ours.objective == pytest.approx(ref.fun, abs=1e-6), (
                    f"trial {trial}"
                )

    def test_randomized_equality_agreement(self):
        rng = np.random.default_rng(999)
        solver = SimplexSolver()
        for trial in range(30):
            n = int(rng.integers(3, 6))
            c = rng.normal(size=n)
            a_eq = rng.normal(size=(2, n))
            x0 = rng.uniform(0.2, 1.0, size=n)
            b_eq = a_eq @ x0
            bounds = np.column_stack([np.zeros(n), np.full(n, 5.0)])
            problem = lp(c, a_eq=a_eq, b_eq=b_eq, bounds=bounds)
            ours = solver.solve(problem)
            ref = linprog(
                c, A_eq=a_eq, b_eq=b_eq,
                bounds=[(0, 5.0)] * n, method="highs",
            )
            assert ours.is_optimal == ref.success, f"trial {trial}"
            if ref.success:
                assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_solution_is_feasible(self):
        rng = np.random.default_rng(7)
        solver = SimplexSolver()
        for _ in range(20):
            problem = self._random_lp(rng)
            result = solver.solve(problem)
            if not result.is_optimal:
                continue
            x = result.x
            assert np.all(problem.a_ub @ x <= problem.b_ub + 1e-7)
            assert np.all(x >= problem.bounds[:, 0] - 1e-9)
            assert np.all(x <= problem.bounds[:, 1] + 1e-9)


class TestValidation:
    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(
                c=np.array([1.0]),
                a_ub=np.array([[1.0]]),
                b_ub=np.array([1.0, 2.0]),
                a_eq=np.zeros((0, 1)),
                b_eq=np.zeros(0),
                bounds=np.array([[0.0, 1.0]]),
            )

    def test_inverted_bounds_reported_infeasible(self):
        result = solve_lp(lp([1.0], bounds=[[3.0, 1.0]]))
        assert result.status is SimplexStatus.INFEASIBLE
