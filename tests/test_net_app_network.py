"""Tests for the application layer and full-network assembly."""

import pytest

from repro.channel.fading import FadingParameters
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.network import Network, simulate_configuration

QUIET = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)


def make_network(
    placement=(0, 1, 2),
    routing=RoutingKind.STAR,
    mac=MacKind.TDMA,
    tx_dbm=0.0,
    fading=QUIET,
    seed=0,
    **kwargs,
):
    return Network(
        placement=placement,
        radio_spec=CC2650,
        tx_mode=CC2650.tx_mode_by_dbm(tx_dbm),
        mac_options=MacOptions(kind=mac),
        routing_options=RoutingOptions(kind=routing, coordinator=0, max_hops=2),
        app_params=AppParameters(),
        fading_params=fading,
        seed=seed,
        **kwargs,
    )


class TestAppParameters:
    def test_defaults_match_design_example(self):
        app = AppParameters()
        assert app.packet_bytes == 100
        assert app.throughput_pps == 10.0
        assert app.baseline_mw == 0.1
        assert app.period_s == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AppParameters(packet_bytes=0)
        with pytest.raises(ValueError):
            AppParameters(throughput_pps=0)
        with pytest.raises(ValueError):
            AppParameters(baseline_mw=-1)


class TestTrafficGeneration:
    def test_generation_rate(self):
        network = make_network()
        outcome = network.run(tsim_s=5.0)
        for node in network.nodes.values():
            # phi = 10 pps over 5 s, minus the random initial phase:
            # between 40 and 50 payloads.
            assert 40 <= node.app.packets_generated <= 50

    def test_destinations_round_robin(self):
        network = make_network(placement=(0, 1, 2, 5))
        network.run(tsim_s=3.0)
        sent = network.stats.node(1).sent
        counts = sorted(sent.values())
        assert set(sent) == {0, 2, 5}
        assert max(counts) - min(counts) <= 1

    def test_generation_stops_at_horizon(self):
        network = make_network()
        outcome = network.run(tsim_s=2.0)
        expected_max = 2.0 * 10.0 + 1
        for node in network.nodes.values():
            assert node.app.packets_generated <= expected_max
        assert outcome.horizon_s == 2.0


class TestCleanChannelDelivery:
    def test_perfect_pdr_on_strong_links(self):
        # Chest + both hips at 0 dBm with no fading: nothing can be lost
        # under TDMA.
        network = make_network(placement=(0, 1, 2), mac=MacKind.TDMA)
        outcome = network.run(tsim_s=5.0)
        assert outcome.pdr == pytest.approx(1.0)

    def test_star_and_mesh_both_deliver_on_clean_channel(self):
        for routing in (RoutingKind.STAR, RoutingKind.MESH):
            network = make_network(placement=(0, 1, 2), routing=routing)
            outcome = network.run(tsim_s=4.0)
            assert outcome.pdr == pytest.approx(1.0), routing

    def test_csma_near_perfect_on_light_load(self):
        network = make_network(placement=(0, 1, 2), mac=MacKind.CSMA)
        outcome = network.run(tsim_s=5.0)
        assert outcome.pdr > 0.97


class TestOutcomeMetrics:
    def test_star_power_close_to_analytical_model(self):
        """On a clean channel with full delivery, the simulated power must
        approach Eq. 5/9's prediction."""
        placement = (0, 1, 2, 5)
        network = make_network(placement=placement, mac=MacKind.TDMA)
        outcome = network.run(tsim_s=10.0)
        n = len(placement)
        tpkt = CC2650.packet_airtime_s(100)
        expected = 0.1 + 10.0 * tpkt * (18.3 + 2 * (n - 1) * 17.7)
        assert outcome.worst_power_mw == pytest.approx(expected, rel=0.15)

    def test_mesh_power_close_to_analytical_model(self):
        placement = (0, 1, 2, 5)
        network = make_network(
            placement=placement, routing=RoutingKind.MESH, mac=MacKind.TDMA
        )
        outcome = network.run(tsim_s=10.0)
        n = len(placement)
        nretx = n * n - 4 * n + 5
        tpkt = CC2650.packet_airtime_s(100)
        expected = 0.1 + 10.0 * tpkt * nretx * (18.3 + (n - 1) * 17.7)
        assert outcome.worst_power_mw == pytest.approx(expected, rel=0.15)

    def test_coordinator_excluded_from_lifetime(self):
        network = make_network(placement=(0, 1, 2))
        outcome = network.run(tsim_s=5.0)
        assert 0 not in {
            loc
            for loc in outcome.node_powers_mw
            if outcome.node_powers_mw[loc] == outcome.worst_power_mw
        } or outcome.worst_power_mw != outcome.node_powers_mw[0]

    def test_mesh_has_no_coordinator_exclusion(self):
        network = make_network(placement=(0, 1, 2), routing=RoutingKind.MESH)
        assert network.coordinator_locations == set()

    def test_nlt_consistent_with_power(self):
        network = make_network()
        outcome = network.run(tsim_s=5.0)
        assert outcome.nlt_days == pytest.approx(
            network.battery.lifetime_days(outcome.worst_power_mw)
        )

    def test_mesh_burns_more_power_than_star(self):
        star = make_network(placement=(0, 1, 2, 5)).run(tsim_s=5.0)
        mesh = make_network(
            placement=(0, 1, 2, 5), routing=RoutingKind.MESH
        ).run(tsim_s=5.0)
        assert mesh.worst_power_mw > star.worst_power_mw
        assert mesh.nlt_days < star.nlt_days


class TestValidation:
    def test_single_node_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            make_network(placement=(0,))

    def test_star_requires_coordinator_in_placement(self):
        with pytest.raises(ValueError, match="coordinator"):
            make_network(placement=(1, 2, 5))

    def test_mesh_without_coordinator_fine(self):
        network = make_network(placement=(1, 2, 5), routing=RoutingKind.MESH)
        assert set(network.nodes) == {1, 2, 5}

    def test_zero_horizon_rejected(self):
        network = make_network()
        with pytest.raises(ValueError):
            network.run(tsim_s=0.0)

    def test_duplicate_placement_entries_deduplicated(self):
        network = make_network(placement=(0, 1, 1, 2))
        assert network.placement == (0, 1, 2)


class TestReplicates:
    def test_replicates_averaged(self):
        outcome = simulate_configuration(
            placement=(0, 1, 2),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            tsim_s=3.0,
            replicates=3,
            seed=1,
        )
        assert outcome.replicates == 3
        assert 0.0 <= outcome.pdr <= 1.0

    def test_determinism_same_seed(self):
        kwargs = dict(
            placement=(0, 1, 3),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(-10.0),
            mac_options=MacOptions(kind=MacKind.CSMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            tsim_s=3.0,
            replicates=2,
            seed=42,
        )
        a = simulate_configuration(**kwargs)
        b = simulate_configuration(**kwargs)
        assert a.pdr == b.pdr
        assert a.worst_power_mw == b.worst_power_mw

    def test_different_seeds_differ(self):
        kwargs = dict(
            placement=(0, 1, 3),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(-10.0),
            mac_options=MacOptions(kind=MacKind.CSMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            tsim_s=3.0,
            replicates=1,
        )
        a = simulate_configuration(seed=1, **kwargs)
        b = simulate_configuration(seed=2, **kwargs)
        assert (a.pdr, a.worst_power_mw) != (b.pdr, b.worst_power_mw)

    def test_replicate_validation(self):
        with pytest.raises(ValueError):
            simulate_configuration(
                placement=(0, 1),
                radio_spec=CC2650,
                tx_mode=CC2650.tx_mode_by_dbm(0.0),
                mac_options=MacOptions(kind=MacKind.TDMA),
                routing_options=RoutingOptions(
                    kind=RoutingKind.STAR, coordinator=0
                ),
                app_params=AppParameters(),
                tsim_s=1.0,
                replicates=0,
            )


class TestLatencyMetric:
    def test_latency_positive_when_delivering(self):
        network = make_network(placement=(0, 1, 2), mac=MacKind.TDMA)
        outcome = network.run(tsim_s=4.0)
        assert outcome.mean_latency_s > 0.0
        # One TDMA frame is 3 ms; typical delivery waits less than a few
        # frames plus the airtime.
        assert outcome.mean_latency_s < 0.1

    def test_star_relay_latency_exceeds_direct_mesh(self):
        star = make_network(placement=(0, 1, 2), routing=RoutingKind.STAR,
                            mac=MacKind.CSMA).run(tsim_s=4.0)
        assert star.mean_latency_s > 0.0

    def test_tdma_latency_grows_with_frame_length(self):
        small = make_network(placement=(0, 1, 2), mac=MacKind.TDMA).run(
            tsim_s=4.0
        )
        large = make_network(
            placement=(0, 1, 2, 5, 6), mac=MacKind.TDMA
        ).run(tsim_s=4.0)
        # 5 slots per frame vs 3: average slot wait grows.
        assert large.mean_latency_s > small.mean_latency_s

    def test_replicate_average_includes_latency(self):
        outcome = simulate_configuration(
            placement=(0, 1, 2),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            tsim_s=2.0,
            replicates=2,
            seed=3,
        )
        assert outcome.mean_latency_s > 0.0
