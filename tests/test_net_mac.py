"""Tests for the CSMA and TDMA MAC layers."""

import pytest

from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import CsmaAccessMode, MacKind, MacOptions
from repro.library.radios import CC2650
from repro.net.mac_csma import CsmaMac
from repro.net.mac_tdma import TdmaMac
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.stats import NodeStats

AIRTIME = CC2650.packet_airtime_s(100)


def build_medium(seed=0):
    sim = Simulator()
    channel = Channel(
        RngStreams(seed=seed),
        fading_params=FadingParameters(sigma_db=0.0, shadow_fraction=0.0),
    )
    return sim, Medium(sim, channel)


def make_radio(sim, medium, loc, tx_dbm=0.0):
    stats = NodeStats(loc)
    radio = Radio(sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(tx_dbm), stats)
    return radio, stats


def pkt(origin, seq=0, destination=1):
    return Packet(
        origin=origin, seq=seq, destination=destination, length_bytes=100
    ).originated()


class TestCsma:
    def make_csma(self, sim, medium, loc, **opt_kwargs):
        radio, stats = make_radio(sim, medium, loc)
        options = MacOptions(kind=MacKind.CSMA, **opt_kwargs)
        rng = RngStreams(seed=loc + 10)
        return CsmaMac(sim, radio, options, stats, rng), stats

    def test_idle_medium_immediate_transmission(self):
        sim, medium = build_medium()
        mac, stats = self.make_csma(sim, medium, 0)
        make_radio(sim, medium, 1)
        mac.enqueue(pkt(0))
        sim.run()
        assert stats.transmissions == 1

    def test_busy_medium_backs_off(self):
        sim, medium = build_medium()
        mac0, stats0 = self.make_csma(sim, medium, 0)
        radio1, _ = make_radio(sim, medium, 1)
        # Node 1 occupies the medium at t=0; node 0 wants to send at the
        # same moment (slightly after, within the airtime).
        sim.schedule(0.0, radio1.transmit, pkt(1, destination=0))
        sim.schedule(AIRTIME / 2, mac0.enqueue, pkt(0))
        sim.run()
        assert stats0.transmissions == 1
        assert mac0.backoffs >= 1

    def test_queue_drains_in_order(self):
        sim, medium = build_medium()
        mac, stats = self.make_csma(sim, medium, 0)
        receiver, rstats = make_radio(sim, medium, 1)
        seen = []
        receiver.on_receive = lambda p, rssi: seen.append(p.seq)
        for seq in range(5):
            mac.enqueue(pkt(0, seq=seq))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_buffer_overflow_drops(self):
        sim, medium = build_medium()
        mac, stats = self.make_csma(sim, medium, 0, buffer_size=3)
        make_radio(sim, medium, 1)
        for seq in range(10):
            mac.enqueue(pkt(0, seq=seq))
        # All enqueued at t=0 before any transmission starts: 3 fit.
        assert stats.buffer_drops == 7
        sim.run()
        assert stats.transmissions == 3

    def test_persistent_mode_spins(self):
        sim, medium = build_medium()
        mac, stats = self.make_csma(
            sim, medium, 0, access_mode=CsmaAccessMode.PERSISTENT
        )
        radio1, _ = make_radio(sim, medium, 1)
        sim.schedule(0.0, radio1.transmit, pkt(1, destination=0))
        sim.schedule(AIRTIME / 2, mac.enqueue, pkt(0))
        sim.run()
        assert stats.transmissions == 1

    def test_two_nodes_share_medium_without_loss(self):
        sim, medium = build_medium()
        mac0, stats0 = self.make_csma(sim, medium, 0)
        mac1, stats1 = self.make_csma(sim, medium, 1)
        sink, sink_stats = make_radio(sim, medium, 2)
        seen = []
        sink.on_receive = lambda p, rssi: seen.append(p.origin)
        # Stagger by half an airtime so the second sender senses the first.
        sim.schedule(0.0, mac0.enqueue, pkt(0, destination=2))
        sim.schedule(AIRTIME / 2, mac1.enqueue, pkt(1, destination=2))
        sim.run()
        assert sorted(seen) == [0, 1]
        assert sink_stats.collisions_seen == 0


class TestTdma:
    def make_tdma(self, sim, medium, loc, slot_index, num_slots, **opt_kwargs):
        radio, stats = make_radio(sim, medium, loc)
        options = MacOptions(kind=MacKind.TDMA, **opt_kwargs)
        rng = RngStreams(seed=loc + 20)
        return (
            TdmaMac(sim, radio, options, stats, rng, slot_index, num_slots),
            stats,
        )

    def test_transmits_only_in_own_slot(self):
        sim, medium = build_medium()
        mac, stats = self.make_tdma(sim, medium, 0, slot_index=2, num_slots=4)
        receiver, _ = make_radio(sim, medium, 1)
        times = []
        receiver.on_receive = lambda p, rssi: times.append(sim.now)
        mac.enqueue(pkt(0))
        sim.run()
        # Slot 2 of a 4 x 1 ms frame starts at 2 ms.
        assert times and times[0] == pytest.approx(2e-3 + AIRTIME)

    def test_next_own_slot_time(self):
        sim, medium = build_medium()
        mac, _ = self.make_tdma(sim, medium, 0, slot_index=1, num_slots=3)
        assert mac.next_own_slot_time(0.0) == pytest.approx(1e-3)
        assert mac.next_own_slot_time(1e-3) == pytest.approx(1e-3)
        assert mac.next_own_slot_time(1.1e-3) == pytest.approx(4e-3)

    def test_one_packet_per_slot(self):
        sim, medium = build_medium()
        mac, stats = self.make_tdma(sim, medium, 0, slot_index=0, num_slots=2)
        receiver, _ = make_radio(sim, medium, 1)
        times = []
        receiver.on_receive = lambda p, rssi: times.append(sim.now)
        for seq in range(3):
            mac.enqueue(pkt(0, seq=seq))
        sim.run()
        assert len(times) == 3
        # Consecutive transmissions are one frame (2 ms) apart.
        assert times[1] - times[0] == pytest.approx(2e-3)
        assert times[2] - times[1] == pytest.approx(2e-3)

    def test_no_collisions_between_slotted_nodes(self):
        sim, medium = build_medium()
        mac0, stats0 = self.make_tdma(sim, medium, 0, slot_index=0, num_slots=2)
        mac1, stats1 = self.make_tdma(sim, medium, 1, slot_index=1, num_slots=2)
        sink, sink_stats = make_radio(sim, medium, 2)
        seen = []
        sink.on_receive = lambda p, rssi: seen.append(p.origin)
        mac0.enqueue(pkt(0, destination=2))
        mac1.enqueue(pkt(1, destination=2))
        sim.run()
        assert sorted(seen) == [0, 1]
        assert sink_stats.collisions_seen == 0

    def test_oversized_packet_rejected(self):
        sim, medium = build_medium()
        mac, _ = self.make_tdma(
            sim, medium, 0, slot_index=0, num_slots=2, slot_s=0.5e-3
        )
        make_radio(sim, medium, 1)
        mac.enqueue(pkt(0))  # 0.78 ms airtime > 0.5 ms slot
        with pytest.raises(ValueError, match="exceeds the TDMA slot"):
            sim.run()

    def test_bad_slot_index_rejected(self):
        sim, medium = build_medium()
        radio, stats = make_radio(sim, medium, 0)
        with pytest.raises(ValueError):
            TdmaMac(
                sim,
                radio,
                MacOptions(kind=MacKind.TDMA),
                stats,
                RngStreams(0),
                slot_index=5,
                num_slots=3,
            )
