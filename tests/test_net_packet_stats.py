"""Tests for packets and the PDR/power statistics (Eqs. 4, 6, 7)."""

import pytest

from repro.library.batteries import CR2032
from repro.net.packet import Packet
from repro.net.stats import NetworkStats, lifetime_days_from_power


def make_packet(**kwargs):
    defaults = dict(origin=0, seq=1, destination=3, length_bytes=100)
    defaults.update(kwargs)
    return Packet(**defaults)


class TestPacket:
    def test_uid_shared_by_copies(self):
        p = make_packet()
        relayed = p.originated().relayed_by(5)
        assert relayed.uid == p.uid
        assert relayed.copy_id != p.copy_id

    def test_originated_marks_origin(self):
        p = make_packet().originated()
        assert p.relayer == 0
        assert 0 in p.visited
        assert p.hops_used == 0

    def test_relay_increments_hops_and_history(self):
        p = make_packet().originated()
        r1 = p.relayed_by(5)
        r2 = r1.relayed_by(6)
        assert r1.hops_used == 1 and r2.hops_used == 2
        assert r2.visited == frozenset({0, 5, 6})
        assert r2.relayer == 6

    def test_original_packet_immutable(self):
        p = make_packet().originated()
        p.relayed_by(4)
        assert p.hops_used == 0 and p.visited == frozenset({0})

    def test_validation(self):
        with pytest.raises(ValueError):
            make_packet(length_bytes=0)
        with pytest.raises(ValueError):
            make_packet(hops_used=-1)


class TestPdrEstimators:
    def make_stats(self):
        return NetworkStats([0, 1, 2])

    def test_eq6_per_node_average_over_sources(self):
        stats = self.make_stats()
        # node 0 sends 10 to node 2, node 1 sends 5 to node 2.
        for _ in range(10):
            stats.node(0).record_sent(2)
        for _ in range(5):
            stats.node(1).record_sent(2)
        # node 2 receives 8 from 0 and 5 from 1.
        for k in range(8):
            stats.node(2).record_delivery(0, (0, k), 0.0)
        for k in range(5):
            stats.node(2).record_delivery(1, (1, k), 0.0)
        assert stats.node_pdr(2) == pytest.approx((0.8 + 1.0) / 2)

    def test_eq7_network_average(self):
        stats = self.make_stats()
        stats.node(0).record_sent(1)
        stats.node(1).record_delivery(0, (0, 0), 0.0)
        # pair (0,1) is perfect; all other pairs carried no traffic and are
        # excluded, so node 1 has PDR 1 and nodes 0, 2 have PDR 0
        # (no ratios -> 0).
        assert stats.network_pdr() == pytest.approx(1.0 / 3.0)

    def test_duplicate_deliveries_counted_once(self):
        stats = self.make_stats()
        stats.node(0).record_sent(1)
        assert stats.node(1).record_delivery(0, (0, 0), 0.1)
        assert not stats.node(1).record_delivery(0, (0, 0), 0.2)
        assert stats.node(1).received[0] == 1

    def test_zero_traffic_pairs_excluded(self):
        stats = self.make_stats()
        stats.node(0).record_sent(1)  # only pair (0,1) carries traffic
        assert stats.node_pdr(1) == 0.0  # sent but nothing received
        assert stats.node_pdr(2) == 0.0  # no ratios at all

    def test_pdr_capped_at_one(self):
        stats = self.make_stats()
        stats.node(0).record_sent(1)
        # Two distinct uids received though only one send was recorded
        # (possible when a run drains in-flight packets past the horizon).
        stats.node(1).record_delivery(0, (0, 0), 0.0)
        stats.node(1).record_delivery(0, (0, 1), 0.0)
        assert stats.node_pdr(1) <= 1.0

    def test_pair_matrix(self):
        stats = self.make_stats()
        stats.node(0).record_sent(1)
        stats.node(1).record_delivery(0, (0, 0), 0.0)
        matrix = stats.pair_matrix()
        assert matrix[(0, 1)] == (1, 1)
        assert matrix[(1, 0)] == (0, 0)

    def test_mean_latency(self):
        stats = self.make_stats()
        stats.node(1).record_delivery(0, (0, 0), 0.2)
        stats.node(1).record_delivery(0, (0, 1), 0.4)
        assert stats.node(1).mean_latency_s == pytest.approx(0.3)


class TestPowerAndLifetime:
    def test_node_power_accounting(self):
        stats = NetworkStats([0, 1])
        node = stats.node(0)
        node.tx_seconds = 10.0
        node.rx_seconds = 20.0
        # over 100 s: 0.1 mW baseline + 10% of 18.3 + 20% of 17.7.
        power = stats.node_power_mw(0, 100.0, 18.3, 17.7, 0.1)
        assert power == pytest.approx(0.1 + 1.83 + 3.54)

    def test_lifetime_uses_worst_node(self):
        stats = NetworkStats([0, 1, 2])
        stats.node(1).tx_seconds = 50.0  # hungriest
        nlt = stats.network_lifetime_days(100.0, 10.0, 0.0, 0.1, CR2032)
        worst_power = 0.1 + 50.0 / 100.0 * 10.0
        assert nlt == pytest.approx(CR2032.lifetime_days(worst_power))

    def test_exclude_coordinator(self):
        stats = NetworkStats([0, 1])
        stats.node(0).tx_seconds = 99.0  # coordinator, excluded
        power = stats.max_noncoordinator_power_mw(
            100.0, 10.0, 0.0, 0.1, exclude={0}
        )
        assert power == pytest.approx(0.1)

    def test_all_excluded_rejected(self):
        stats = NetworkStats([0])
        with pytest.raises(ValueError):
            stats.max_noncoordinator_power_mw(1.0, 1.0, 1.0, 0.1, exclude={0})

    def test_bad_horizon_rejected(self):
        stats = NetworkStats([0])
        with pytest.raises(ValueError):
            stats.node_power_mw(0, 0.0, 1.0, 1.0, 0.1)

    def test_lifetime_days_from_power(self):
        assert lifetime_days_from_power(1.0, CR2032) == pytest.approx(
            675.0 / 24.0
        )
