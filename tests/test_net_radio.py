"""Tests for the PHY layer: link budgets, collisions, capture, energy."""

import pytest

from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.radios import CC2650
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.stats import NodeStats


def quiet_channel(seed=0):
    """Channel with all randomness disabled: reception is decided purely
    by the mean link budget."""
    return Channel(
        RngStreams(seed=seed),
        fading_params=FadingParameters(sigma_db=0.0, shadow_fraction=0.0),
    )


def build(locations, tx_dbm=0.0, seed=0):
    sim = Simulator()
    medium = Medium(sim, quiet_channel(seed))
    radios = {}
    stats = {}
    for loc in locations:
        stats[loc] = NodeStats(loc)
        radios[loc] = Radio(
            sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(tx_dbm), stats[loc]
        )
    return sim, medium, radios, stats


def packet(origin=0, seq=0, destination=1):
    return Packet(origin=origin, seq=seq, destination=destination,
                  length_bytes=100).originated()


class TestReception:
    def test_strong_link_delivers(self):
        sim, _medium, radios, stats = build([0, 1])  # chest-hip: strong
        received = []
        radios[1].on_receive = lambda p, rssi: received.append((p, rssi))
        radios[0].transmit(packet())
        sim.run()
        assert len(received) == 1
        assert stats[1].receptions == 1
        assert stats[0].transmissions == 1

    def test_weak_link_below_sensitivity(self):
        # chest (0) to ankle (3) at -20 dBm cannot close on average.
        sim, _medium, radios, stats = build([0, 3], tx_dbm=-20.0)
        received = []
        radios[3].on_receive = lambda p, rssi: received.append(p)
        radios[0].transmit(packet(destination=3))
        sim.run()
        assert received == []
        assert stats[3].below_sensitivity == 1
        assert stats[3].rx_seconds == 0.0  # receiver never woke up

    def test_broadcast_reaches_all_in_range(self):
        sim, _medium, radios, stats = build([0, 1, 2])
        counts = {1: 0, 2: 0}

        def listener(loc):
            def cb(p, rssi):
                counts[loc] += 1
            return cb

        radios[1].on_receive = listener(1)
        radios[2].on_receive = listener(2)
        radios[0].transmit(packet())
        sim.run()
        assert counts == {1: 1, 2: 1}

    def test_rssi_equals_budget(self):
        sim, medium, radios, _stats = build([0, 1])
        seen = []
        radios[1].on_receive = lambda p, rssi: seen.append(rssi)
        radios[0].transmit(packet())
        sim.run()
        expected = 0.0 - medium.channel.mean_model.mean_path_loss(0, 1)
        assert seen[0] == pytest.approx(expected)


class TestCollisions:
    def test_overlapping_equal_power_collide(self):
        # 1 and 2 transmit simultaneously; 0 hears both at similar power
        # (symmetric hips) -> neither captured.
        sim, _medium, radios, stats = build([0, 1, 2])
        got = []
        radios[0].on_receive = lambda p, rssi: got.append(p)
        sim.schedule(0.0, radios[1].transmit, packet(origin=1, destination=0))
        sim.schedule(0.0, radios[2].transmit, packet(origin=2, destination=0))
        sim.run()
        assert got == []
        assert stats[0].collisions_seen == 2
        # The receiver still burned RX energy on the attempts.
        assert stats[0].rx_seconds > 0.0

    def test_capture_of_much_stronger_signal(self):
        # 0 hears 1 (hip, strong) and 3 (ankle, ~20 dB weaker): the strong
        # one is captured, the weak one lost.
        sim, _medium, radios, stats = build([0, 1, 3])
        got = []
        radios[0].on_receive = lambda p, rssi: got.append(p.origin)
        sim.schedule(0.0, radios[1].transmit, packet(origin=1, destination=0))
        sim.schedule(0.0, radios[3].transmit, packet(origin=3, destination=0))
        sim.run()
        assert got == [1]

    def test_half_duplex_transmitter_cannot_receive(self):
        sim, _medium, radios, stats = build([0, 1])
        got = []
        radios[0].on_receive = lambda p, rssi: got.append(p)
        # Both transmit at the same instant: each misses the other.
        sim.schedule(0.0, radios[0].transmit, packet(origin=0, destination=1))
        sim.schedule(0.0, radios[1].transmit, packet(origin=1, destination=0))
        sim.run()
        assert got == []

    def test_non_overlapping_sequential_ok(self):
        sim, _medium, radios, _stats = build([0, 1, 2])
        got = []
        radios[0].on_receive = lambda p, rssi: got.append(p.origin)
        airtime = CC2650.packet_airtime_s(100)
        sim.schedule(0.0, radios[1].transmit, packet(origin=1, destination=0))
        sim.schedule(
            airtime * 1.1, radios[2].transmit, packet(origin=2, destination=0)
        )
        sim.run()
        assert sorted(got) == [1, 2]


class TestEnergyAccounting:
    def test_tx_time_accumulates_airtime(self):
        sim, _medium, radios, stats = build([0, 1])
        radios[0].transmit(packet())
        sim.run()
        assert stats[0].tx_seconds == pytest.approx(CC2650.packet_airtime_s(100))

    def test_rx_time_per_decodable_arrival(self):
        sim, _medium, radios, stats = build([0, 1])
        for seq in range(3):
            sim.schedule(
                0.01 * seq, radios[0].transmit, packet(seq=seq)
            )
        sim.run()
        assert stats[1].rx_seconds == pytest.approx(
            3 * CC2650.packet_airtime_s(100)
        )


class TestCarrierSense:
    def test_busy_during_transmission(self):
        sim, medium, radios, _stats = build([0, 1])
        samples = []
        radios[0].transmit(packet())
        sim.schedule(
            CC2650.packet_airtime_s(100) / 2,
            lambda: samples.append(medium.sensed_busy(1, -100.0)),
        )
        sim.schedule(
            CC2650.packet_airtime_s(100) * 2,
            lambda: samples.append(medium.sensed_busy(1, -100.0)),
        )
        sim.run()
        assert samples == [True, False]

    def test_own_transmission_reads_busy(self):
        sim, medium, radios, _stats = build([0, 1])
        samples = []
        radios[0].transmit(packet())
        sim.schedule(
            1e-4, lambda: samples.append(medium.sensed_busy(0, -100.0))
        )
        sim.run()
        assert samples == [True]

    def test_hidden_terminal_not_sensed(self):
        # The ankle-to-head link loses >100 dB on average; at -20 dBm the
        # head cannot sense the ankle's transmission at all — the classic
        # hidden-terminal precondition.
        sim, medium, radios, _stats = build([3, 8], tx_dbm=-20.0)
        samples = []
        radios[3].transmit(packet(origin=3, destination=8))
        sim.schedule(
            1e-4, lambda: samples.append(medium.sensed_busy(8, -97.0))
        )
        sim.run()
        assert samples == [False]


class TestGuards:
    def test_double_transmit_rejected(self):
        sim, _medium, radios, _stats = build([0, 1])
        radios[0].transmit(packet())
        with pytest.raises(RuntimeError, match="already transmitting"):
            radios[0].transmit(packet(seq=1))

    def test_duplicate_location_rejected(self):
        sim, medium, radios, stats = build([0, 1])
        with pytest.raises(ValueError, match="two radios"):
            Radio(sim, medium, 0, CC2650, CC2650.tx_modes[0], NodeStats(0))
