"""Tests for star relay and controlled-flooding routing layers."""

from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import (
    MacKind,
    MacOptions,
    RoutingKind,
    RoutingOptions,
)
from repro.library.radios import CC2650
from repro.net.mac_csma import CsmaMac
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.routing_flood import FloodRouting
from repro.net.routing_star import StarRouting
from repro.net.stats import NodeStats


def build_network(locations, routing_kind, max_hops=2, coordinator=0, seed=0):
    """Hand-wired stack (radio+CSMA+routing) on a noiseless channel."""
    sim = Simulator()
    channel = Channel(
        RngStreams(seed=seed),
        fading_params=FadingParameters(sigma_db=0.0, shadow_fraction=0.0),
    )
    medium = Medium(sim, channel)
    stats, routers, delivered = {}, {}, {loc: [] for loc in locations}
    for loc in locations:
        stats[loc] = NodeStats(loc)
        radio = Radio(
            sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(0.0), stats[loc]
        )
        mac = CsmaMac(
            sim,
            radio,
            MacOptions(kind=MacKind.CSMA),
            stats[loc],
            RngStreams(seed=seed + loc),
        )
        options = RoutingOptions(
            kind=routing_kind, coordinator=coordinator, max_hops=max_hops
        )
        if routing_kind is RoutingKind.STAR:
            router = StarRouting(sim, mac, options, stats[loc],
                                 RngStreams(seed=seed + loc))
        else:
            router = FloodRouting(
                sim, mac, options, stats[loc], RngStreams(seed=seed + loc)
            )
        radio.on_receive = router.on_receive

        def make_sink(loc=loc):
            def sink(packet, rssi):
                delivered[loc].append(packet)
            return sink

        router.deliver_up = make_sink()
        routers[loc] = router
    return sim, routers, stats, delivered


def fresh_packet(origin, destination, seq=0):
    return Packet(
        origin=origin, seq=seq, destination=destination, length_bytes=100
    )


class TestStarRouting:
    def test_coordinator_relays_once(self):
        sim, routers, stats, delivered = build_network(
            [0, 1, 2], RoutingKind.STAR
        )
        routers[1].send(fresh_packet(1, 2))
        sim.run()
        assert stats[0].relays == 1
        # Destination hears the original broadcast AND the relay, but the
        # copies share one uid.
        uids = {p.uid for p in delivered[2]}
        assert uids == {(1, 0)}
        assert len(delivered[2]) == 2  # original + relayed copy

    def test_coordinator_does_not_relay_own_traffic(self):
        sim, routers, stats, _delivered = build_network(
            [0, 1, 2], RoutingKind.STAR
        )
        routers[0].send(fresh_packet(0, 1))
        sim.run()
        assert stats[0].relays == 0

    def test_packet_to_coordinator_not_relayed(self):
        sim, routers, stats, delivered = build_network(
            [0, 1, 2], RoutingKind.STAR
        )
        routers[1].send(fresh_packet(1, 0))
        sim.run()
        assert stats[0].relays == 0
        assert {p.uid for p in delivered[0]} == {(1, 0)}

    def test_duplicate_uid_relayed_once(self):
        sim, routers, stats, _delivered = build_network(
            [0, 1, 2], RoutingKind.STAR
        )
        # Same uid submitted twice (e.g. an app-level retransmission).
        routers[1].send(fresh_packet(1, 2, seq=7))
        sim.schedule(0.05, routers[1].send, fresh_packet(1, 2, seq=7))
        sim.run()
        assert stats[0].relays == 1

    def test_non_coordinator_never_relays(self):
        sim, routers, stats, _delivered = build_network(
            [0, 1, 2], RoutingKind.STAR, coordinator=0
        )
        routers[2].send(fresh_packet(2, 0))
        sim.run()
        assert stats[1].relays == 0

    def test_is_coordinator_flag(self):
        _sim, routers, _stats, _delivered = build_network(
            [0, 1], RoutingKind.STAR, coordinator=0
        )
        assert routers[0].is_coordinator
        assert not routers[1].is_coordinator


class TestFloodRouting:
    def test_retx_count_matches_paper_formula(self):
        """On a fully connected noiseless channel, one payload generates
        exactly NreTx = N^2 - 4N + 5 transmissions (Sec. 4.1)."""
        for locations in ([0, 1, 2, 5], [0, 1, 2, 5, 6]):
            n = len(locations)
            sim, routers, stats, _delivered = build_network(
                locations, RoutingKind.MESH, max_hops=2
            )
            routers[0].send(fresh_packet(0, locations[-1]))
            sim.run()
            total_tx = sum(s.transmissions for s in stats.values())
            assert total_tx == n * n - 4 * n + 5, f"N={n}"

    def test_destination_never_relays(self):
        sim, routers, stats, _delivered = build_network(
            [0, 1, 2, 5], RoutingKind.MESH
        )
        routers[0].send(fresh_packet(0, 5))
        sim.run()
        assert stats[5].relays == 0

    def test_hop_limit_one_single_relay_ring(self):
        # N_hops = 1: one relay ring, so N - 1 transmissions in total,
        # matching RoutingOptions.retx_count on a fully connected channel.
        sim, routers, stats, _delivered = build_network(
            [0, 1, 2, 5], RoutingKind.MESH, max_hops=1
        )
        routers[0].send(fresh_packet(0, 5))
        sim.run()
        total_tx = sum(s.transmissions for s in stats.values())
        assert total_tx == 3

    def test_no_node_relays_copy_it_already_visited(self):
        sim, routers, stats, delivered = build_network(
            [0, 1, 2, 5], RoutingKind.MESH
        )
        routers[0].send(fresh_packet(0, 5))
        sim.run()
        # Every relayed copy's history must contain the relayer's path
        # without repetition.
        for loc, packets in delivered.items():
            for p in packets:
                assert len(p.visited) == len(set(p.visited))

    def test_delivery_via_relay_when_direct_link_dead(self):
        # ankle (3) to head (8) is >100 dB: direct fails even at 0 dBm;
        # flooding via chest (0) bridges it.
        sim, routers, stats, delivered = build_network(
            [0, 3, 8], RoutingKind.MESH
        )
        routers[3].send(fresh_packet(3, 8))
        sim.run()
        assert {p.uid for p in delivered[8]} == {(3, 0)}
        relayed = [p for p in delivered[8] if p.hops_used == 1]
        assert relayed and relayed[0].relayer == 0

    def test_jitter_zero_still_works(self):
        sim = Simulator()
        channel = Channel(
            RngStreams(seed=0),
            fading_params=FadingParameters(sigma_db=0.0, shadow_fraction=0.0),
        )
        medium = Medium(sim, channel)
        stats = {loc: NodeStats(loc) for loc in (0, 1, 2)}
        delivered = []
        for loc in (0, 1, 2):
            radio = Radio(
                sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(0.0), stats[loc]
            )
            mac = CsmaMac(
                sim, radio, MacOptions(kind=MacKind.CSMA), stats[loc],
                RngStreams(seed=loc),
            )
            router = FloodRouting(
                sim, mac, RoutingOptions(kind=RoutingKind.MESH),
                stats[loc], RngStreams(seed=loc), jitter_max_s=0.0,
            )
            radio.on_receive = router.on_receive
            if loc == 2:
                router.deliver_up = lambda p, rssi: delivered.append(p)
            if loc == 0:
                sender = router
        sender.send(fresh_packet(0, 2))
        sim.run()
        assert delivered
