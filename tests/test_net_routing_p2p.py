"""Tests for the point-to-point forwarding mesh extension."""

from repro.channel.body import STANDARD_BODY
from repro.channel.fading import FadingParameters
from repro.channel.link import Channel
from repro.channel.pathloss import MeanPathLossModel
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import (
    MacKind,
    MacOptions,
    RoutingKind,
    RoutingOptions,
)
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.mac_csma import CsmaMac
from repro.net.network import Network, simulate_configuration
from repro.net.packet import Packet
from repro.net.radio import Medium, Radio
from repro.net.routing_p2p import P2pRouting, build_route_tables
from repro.net.stats import NodeStats

QUIET = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)
MEAN_MODEL = MeanPathLossModel(STANDARD_BODY)


class TestRouteTables:
    def test_direct_routes_when_all_links_close(self):
        """At 0 dBm every link of a torso placement closes: all routes are
        single-hop."""
        tables = build_route_tables([0, 1, 2], MEAN_MODEL, 0.0, -97.0)
        assert tables[0] == {1: 1, 2: 2}
        assert tables[1] == {0: 0, 2: 2}

    def test_multihop_route_around_dead_link(self):
        """ankle(3) <-> head(8) exceeds 100 dB: at 0 dBm the route must
        pass through an intermediate."""
        tables = build_route_tables([0, 3, 8], MEAN_MODEL, 0.0, -97.0)
        assert tables[3][8] == 0
        assert tables[8][3] == 0

    def test_unreachable_destination_omitted(self):
        # At -20 dBm (budget 77 dB) the ankle is unreachable from the head
        # even via the chest relay (chest-ankle is 86 dB).
        tables = build_route_tables([0, 3, 8], MEAN_MODEL, -20.0, -97.0)
        assert 3 not in tables[8]

    def test_margin_prunes_marginal_links(self):
        no_margin = build_route_tables([0, 3], MEAN_MODEL, -10.0, -97.0)
        with_margin = build_route_tables(
            [0, 3], MEAN_MODEL, -10.0, -97.0, margin_db=10.0
        )
        assert 3 in no_margin[0]      # 1 dB of mean margin: routed
        assert 3 not in with_margin[0]  # pruned under a 10 dB requirement

    def test_routes_prefer_low_loss_paths(self):
        # Between two equal-hop alternatives the lower-loss one wins:
        # verified indirectly by weight = path loss in Dijkstra; tables
        # must be consistent (next hop leads closer to the destination).
        placement = [0, 1, 3, 6]
        tables = build_route_tables(placement, MEAN_MODEL, 0.0, -97.0)
        for src in placement:
            for dst, hop in tables[src].items():
                assert hop in placement
                assert hop != src


class TestForwardingMechanics:
    def build(self, placement, tx_dbm=0.0):
        sim = Simulator()
        channel = Channel(RngStreams(seed=0), fading_params=QUIET)
        medium = Medium(sim, channel)
        stats, routers, delivered = {}, {}, {loc: [] for loc in placement}
        for loc in placement:
            stats[loc] = NodeStats(loc)
            radio = Radio(
                sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(tx_dbm),
                stats[loc],
            )
            mac = CsmaMac(
                sim, radio, MacOptions(kind=MacKind.CSMA), stats[loc],
                RngStreams(seed=loc),
            )
            router = P2pRouting(
                sim, mac,
                RoutingOptions(kind=RoutingKind.P2P, max_hops=3),
                stats[loc], RngStreams(seed=loc),
                placement=list(placement),
            )
            radio.on_receive = router.on_receive

            def sink(loc=loc):
                return lambda p, rssi: delivered[loc].append(p)

            router.deliver_up = sink()
            routers[loc] = router
        return sim, routers, stats, delivered

    def test_single_hop_delivery(self):
        sim, routers, stats, delivered = self.build([0, 1, 2])
        routers[1].send(Packet(origin=1, seq=0, destination=2,
                               length_bytes=100))
        sim.run()
        assert {p.uid for p in delivered[2]} == {(1, 0)}
        total_tx = sum(s.transmissions for s in stats.values())
        assert total_tx == 1  # direct route, no relays

    def test_two_hop_forwarding(self):
        sim, routers, stats, delivered = self.build([0, 3, 8])
        routers[3].send(Packet(origin=3, seq=0, destination=8,
                               length_bytes=100))
        sim.run()
        assert {p.uid for p in delivered[8]} == {(3, 0)}
        assert stats[0].relays == 1
        total_tx = sum(s.transmissions for s in stats.values())
        assert total_tx == 2  # source + one forwarder

    def test_only_next_hop_forwards(self):
        # 4 nodes; the copy is addressed to one next hop, so even though
        # everyone hears it, only that node relays.
        sim, routers, stats, delivered = self.build([0, 1, 3, 8])
        routers[3].send(Packet(origin=3, seq=0, destination=8,
                               length_bytes=100))
        sim.run()
        relayers = [loc for loc, s in stats.items() if s.relays > 0]
        assert len(relayers) <= 2
        assert {p.uid for p in delivered[8]} == {(3, 0)}

    def test_next_hop_lookup_fallback(self):
        sim, routers, _stats, _delivered = self.build([0, 1, 2])
        # Unrouted destination (not in this placement): falls back direct.
        assert routers[0].next_hop_for(9) == 9


class TestEndToEnd:
    def run_config(self, routing_kind, tx_dbm=0.0, seed=5):
        return simulate_configuration(
            placement=(0, 1, 3, 6),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(tx_dbm),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=routing_kind, coordinator=0,
                                           max_hops=2),
            app_params=AppParameters(),
            tsim_s=20.0,
            replicates=1,
            seed=seed,
        )

    def test_p2p_cheaper_than_flooding(self):
        """The paper's predicted trade-off: point-to-point forwarding
        transmits far fewer copies than controlled flooding (longer
        lifetime) but loses its single-route redundancy (lower PDR on the
        dynamic body channel)."""
        flood = self.run_config(RoutingKind.MESH)
        p2p = self.run_config(RoutingKind.P2P)
        assert p2p.totals["transmissions"] < flood.totals["transmissions"] / 2
        assert p2p.worst_power_mw < flood.worst_power_mw
        assert p2p.pdr <= flood.pdr

    def test_p2p_network_builds_without_coordinator(self):
        network = Network(
            placement=(1, 3, 6),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.P2P, max_hops=2),
            app_params=AppParameters(),
            seed=0,
        )
        assert network.coordinator_locations == set()
        outcome = network.run(tsim_s=3.0)
        assert 0.0 <= outcome.pdr <= 1.0

    def test_p2p_retx_model_bounds_simulation(self):
        """The coarse model's N_reTx bound (= max_hops) must upper-bound
        the per-payload transmissions observed on a clean channel."""
        outcome = simulate_configuration(
            placement=(0, 1, 3, 6),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.P2P, max_hops=2),
            app_params=AppParameters(),
            tsim_s=10.0,
            replicates=1,
            seed=0,
            fading_params=QUIET,
        )
        payloads = 4 * 10.0 * 10.0
        per_payload = outcome.totals["transmissions"] / payloads
        opts = RoutingOptions(kind=RoutingKind.P2P, max_hops=2)
        assert per_payload <= opts.retx_count(4) + 0.05


class TestCoarseModelBranch:
    def test_retx_count_p2p(self):
        opts = RoutingOptions(kind=RoutingKind.P2P, max_hops=2)
        assert opts.retx_count(4) == 2
        assert RoutingOptions(kind=RoutingKind.P2P, max_hops=5).retx_count(4) == 3

    def test_prt_encoding(self):
        assert RoutingKind.P2P.prt == 1  # multi-hop family

    def test_milp_space_with_p2p(self):
        """A custom space including P2P flows through the MILP path."""
        from repro.core.design_space import DesignSpace, PlacementConstraints
        from repro.core.milp_builder import MilpFormulation
        from repro.core.problem import DesignProblem, ScenarioParameters

        problem = DesignProblem(
            pdr_min=0.5,
            scenario=ScenarioParameters(tsim_s=5.0, replicates=1),
            space=DesignSpace(
                constraints=PlacementConstraints(max_nodes=4),
                tx_levels_dbm=(0.0,),
                routing_kinds=(
                    RoutingKind.STAR, RoutingKind.MESH, RoutingKind.P2P
                ),
            ),
        )
        formulation = MilpFormulation(problem)
        _status, configs, p_star = formulation.enumerate_candidates(
            max_solutions=64
        )
        # P2P at max_hops=2 has NreTx=2 < star's effective cost? The star
        # branch costs phi*Tpkt*(Tx + 2*3*Rx); P2P costs
        # phi*Tpkt*2*(Tx + 3*Rx).  Star: 18.3+106.2=124.5; P2P:
        # 2*(18.3+53.1)=142.8 -> star still cheapest.
        assert all(c.routing is RoutingKind.STAR for c in configs)
        # Walk one level: the next cheapest is P2P.
        _s, configs2, p2 = formulation.enumerate_candidates(
            [p_star], max_solutions=64
        )
        assert p2 > p_star
        assert all(c.routing is RoutingKind.P2P for c in configs2)
