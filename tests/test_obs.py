"""Unit tests for the observability substrate (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    TraceWriter,
    activate,
    check_span_balance,
    get_active,
    read_trace,
    set_active,
)


class TestMetrics:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        c.inc(0.5)
        assert c.value == 4.5
        c.reset()
        assert c.value == 0

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_stats(self):
        h = Histogram("wall")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 3.0

    def test_histogram_empty_and_bad_quantile(self):
        h = Histogram("w")
        assert h.quantile(0.5) == 0.0
        assert h.to_dict()["count"] == 0
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")  # already a counter
        assert "a" in r
        assert len(r) == 1

    def test_registry_to_dict_and_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(7)
        r.histogram("h").observe(1.0)
        d = r.to_dict()
        assert d["c"] == {"type": "counter", "value": 2}
        assert d["g"]["value"] == 7.0
        assert d["h"]["count"] == 1
        assert list(d) == sorted(d)
        r.reset()
        assert r.counter("c").value == 0
        assert r.histogram("h").count == 0


class TestTraceWriter:
    def test_events_and_manifest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tracer:
            tracer.manifest(seed=0, preset="ci")
            tracer.event("hello", x=1, items=[1, 2], flag=True, none=None)
        events = read_trace(path)
        assert [e["kind"] for e in events] == ["manifest", "hello"]
        assert events[0]["seed"] == 0
        assert events[1]["items"] == [1, 2]
        assert events[1]["none"] is None
        # seq strictly increasing, t monotone non-decreasing
        assert events[1]["seq"] > events[0]["seq"]
        assert events[1]["t"] >= events[0]["t"]

    def test_span_nesting_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tracer:
            with tracer.span("outer"):
                tracer.event("inside")
                with tracer.span("inner"):
                    pass
        events = read_trace(path)
        assert check_span_balance(events) is None
        begins = [e for e in events if e["kind"] == "span_begin"]
        outer, inner = begins
        assert outer["depth"] == 0 and outer["parent"] == 0
        assert inner["depth"] == 1 and inner["parent"] == outer["id"]
        inside = next(e for e in events if e["kind"] == "inside")
        assert inside["span"] == outer["id"]
        end = next(e for e in events if e["kind"] == "span_end"
                   and e["id"] == inner["id"])
        assert end["dur_s"] >= 0.0

    def test_span_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = TraceWriter(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        assert check_span_balance(read_trace(path)) is None

    def test_close_idempotent_and_drops_late_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = TraceWriter(path)
        tracer.event("a")
        tracer.close()
        tracer.close()
        tracer.event("late")  # silently dropped, no crash
        assert [e["kind"] for e in read_trace(path)] == ["a"]

    def test_read_trace_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "ok"}) + "\n"
            + "{truncated...\n"
            + "\n"
            + "[1, 2]\n"
            + json.dumps({"kind": "ok2"}) + "\n"
        )
        assert [e["kind"] for e in read_trace(path)] == ["ok", "ok2"]

    def test_check_span_balance_detects_violations(self):
        assert check_span_balance(
            [{"kind": "span_begin", "id": 1, "parent": 0, "depth": 0}]
        ) is not None  # left open
        assert check_span_balance(
            [{"kind": "span_end", "id": 9}]
        ) is not None  # never opened
        assert check_span_balance([]) is None

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1):
            NULL_TRACER.event("whatever")
        NULL_TRACER.manifest(a=1)
        NULL_TRACER.flush()
        NULL_TRACER.close()


class TestRuntime:
    def test_default_active_has_null_tracer(self):
        assert get_active().tracing is False

    def test_activate_restores_on_exit_and_exception(self):
        outer = get_active()
        instr = Instrumentation()
        with activate(instr):
            assert get_active() is instr
        assert get_active() is outer
        with pytest.raises(ValueError):
            with activate(instr):
                raise ValueError()
        assert get_active() is outer

    def test_set_active_none_restores_default(self):
        instr = Instrumentation()
        previous = set_active(instr)
        try:
            assert get_active() is instr
        finally:
            set_active(None)
        assert get_active() is not instr
        assert previous is not instr

    def test_instrumentation_delegates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tracer:
            instr = Instrumentation(MetricsRegistry(), tracer)
            assert instr.tracing is True
            instr.counter("c").inc()
            instr.gauge("g").set(2)
            instr.histogram("h").observe(1.0)
            with instr.span("s"):
                instr.event("e")
        assert instr.metrics.counter("c").value == 1
        kinds = [e["kind"] for e in read_trace(path)]
        assert kinds == ["span_begin", "e", "span_end"]


class TestOracleMetricsIntegration:
    """The oracle's stats() must be pure views over its registry."""

    def test_stats_single_source_of_truth(self):
        from repro.core.evaluator import SimulationOracle
        from repro.experiments.scenario import make_scenario, make_space

        scenario = make_scenario("smoke", seed=0)
        configs = list(make_space("smoke").feasible_configurations())[:2]
        with SimulationOracle(scenario) as oracle:
            oracle.evaluate(configs[0])
            oracle.evaluate(configs[0])  # memory hit
            oracle.evaluate(configs[1])
            m = oracle.obs.metrics
            assert oracle.simulations_run == m.counter("oracle.simulations").value == 2
            assert oracle.cache_hits == m.counter("oracle.cache_hits").value == 1
            stats = oracle.stats()
            hist = m.histogram("oracle.wall_seconds")
            assert stats["simulations_run"] == 2
            assert stats["total_wall_seconds"] == hist.total
            assert stats["p50_wall_seconds"] == hist.quantile(0.5)
            assert stats["p95_wall_seconds"] == hist.quantile(0.95)
            oracle.reset_counters()
            assert oracle.simulations_run == 0
            assert oracle.stats()["total_wall_seconds"] == 0.0
            # cached results survive a counter reset
            oracle.evaluate(configs[0])
            assert oracle.simulations_run == 0
            assert oracle.cache_hits == 1

    def test_oracle_traces_evaluations(self, tmp_path):
        from repro.core.evaluator import SimulationOracle
        from repro.experiments.scenario import make_scenario, make_space

        scenario = make_scenario("smoke", seed=0)
        config = next(iter(make_space("smoke").feasible_configurations()))
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tracer:
            obs = Instrumentation(MetricsRegistry(), tracer)
            with SimulationOracle(scenario, obs=obs) as oracle:
                oracle.evaluate(config)
                oracle.evaluate(config)
        evals = [e for e in read_trace(path) if e["kind"] == "oracle.evaluate"]
        assert [e["cached"] for e in evals] == [False, True]
        assert evals[0]["config"] == config.label()
