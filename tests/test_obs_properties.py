"""Property-based tests for repro.obs and the cache fingerprint.

Stdlib-``random`` driven (no hypothesis dependency): each property runs
against a batch of seeded random structures, so failures reproduce
exactly and the suite stays deterministic in CI.
"""

import dataclasses
import json
import random
import string

import pytest

from repro.core.result_cache import canonicalize, scenario_fingerprint
from repro.obs import (
    Histogram,
    TraceWriter,
    check_span_balance,
    read_trace,
)

SEEDS = range(8)


# ---------------------------------------------------------------------------
# Span nesting always balances
# ---------------------------------------------------------------------------

def _random_span_tree(tracer, rng, depth=0):
    """Open/close random spans, recursing with random fan-out."""
    for _ in range(rng.randint(0, 3)):
        name = rng.choice(("milp.solve", "oracle.evaluate_many", "des.run"))
        if rng.random() < 0.2:
            tracer.event("noise", depth=depth)
            continue
        with tracer.span(name, depth_hint=depth):
            if depth < 4:
                _random_span_tree(tracer, rng, depth + 1)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_span_trees_balance(tmp_path, seed):
    rng = random.Random(seed)
    path = tmp_path / "t.jsonl"
    with TraceWriter(path) as tracer:
        _random_span_tree(tracer, rng)
    events = read_trace(path)
    assert check_span_balance(events) is None
    # every begin has exactly one end with the same id, in LIFO order
    begins = sum(e["kind"] == "span_begin" for e in events)
    ends = sum(e["kind"] == "span_end" for e in events)
    assert begins == ends


@pytest.mark.parametrize("seed", SEEDS)
def test_truncated_span_trace_is_flagged(tmp_path, seed):
    """Dropping the tail of a trace with open spans must be detected."""
    rng = random.Random(seed)
    path = tmp_path / "t.jsonl"
    with TraceWriter(path) as tracer:
        with tracer.span("outer"):
            _random_span_tree(tracer, rng)
    events = read_trace(path)
    assert check_span_balance(events) is None
    # chop off the closing span_end of "outer" (and anything after)
    last_end = max(
        i for i, e in enumerate(events) if e["kind"] == "span_end"
    )
    assert check_span_balance(events[:last_end]) is not None


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_quantiles_bounded_and_monotone(seed):
    rng = random.Random(seed)
    h = Histogram("h")
    values = [rng.uniform(-50, 50) for _ in range(rng.randint(1, 200))]
    for v in values:
        h.observe(v)
    assert h.min == min(values)
    assert h.max == max(values)
    assert abs(h.total - sum(values)) < 1e-9
    qs = [i / 20 for i in range(21)]
    quantiles = [h.quantile(q) for q in qs]
    for q_val in quantiles:
        assert h.min <= q_val <= h.max
    assert quantiles == sorted(quantiles)  # monotone in q
    # every quantile is an observed value (nearest-rank, no interpolation)
    assert all(q_val in values for q_val in quantiles)


@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_order_invariant(seed):
    """Quantiles depend on the multiset of samples, not arrival order."""
    rng = random.Random(seed)
    values = [rng.uniform(0, 10) for _ in range(50)]
    shuffled = list(values)
    rng.shuffle(shuffled)
    a, b = Histogram("a"), Histogram("b")
    for v in values:
        a.observe(v)
    for v in shuffled:
        b.observe(v)
    # order-exact: count, extrema, every quantile (sorted data)
    assert (a.count, a.min, a.max) == (b.count, b.min, b.max)
    qs = [i / 10 for i in range(11)]
    assert [a.quantile(q) for q in qs] == [b.quantile(q) for q in qs]
    # float addition is non-associative, so sums only match approximately
    assert a.total == pytest.approx(b.total)


# ---------------------------------------------------------------------------
# Trace round trip
# ---------------------------------------------------------------------------

def _random_json_value(rng, depth=0):
    kinds = ["int", "float", "str", "bool", "none"]
    if depth < 2:
        kinds += ["list", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.randint(-10**6, 10**6)
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "str":
        return "".join(rng.choices(string.printable, k=rng.randint(0, 12)))
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [_random_json_value(rng, depth + 1) for _ in range(rng.randint(0, 4))]
    return {
        "".join(rng.choices(string.ascii_lowercase, k=5)):
            _random_json_value(rng, depth + 1)
        for _ in range(rng.randint(0, 4))
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_round_trip(tmp_path, seed):
    """Arbitrary JSON-typed event payloads survive write → read intact."""
    rng = random.Random(seed)
    payloads = [
        {
            "".join(rng.choices(string.ascii_lowercase, k=6)):
                _random_json_value(rng)
            for _ in range(rng.randint(1, 5))
        }
        for _ in range(rng.randint(1, 20))
    ]
    path = tmp_path / "t.jsonl"
    with TraceWriter(path) as tracer:
        for i, payload in enumerate(payloads):
            tracer.event(f"k{i}", **payload)
    events = read_trace(path)
    assert len(events) == len(payloads)
    for i, (event, payload) in enumerate(zip(events, payloads)):
        assert event["kind"] == f"k{i}"
        for key, value in payload.items():
            assert event[key] == value


# ---------------------------------------------------------------------------
# Cache fingerprint invariance
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _FakeScenario:
    """Minimal stand-in with the field shapes ScenarioParameters uses."""
    name: str
    tsim_s: float
    rates: dict
    tags: tuple
    n_jobs: int = 1
    cache_dir: object = None


def _shuffled_dict(d, rng):
    items = list(d.items())
    rng.shuffle(items)
    return dict(items)


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprint_invariant_under_dict_key_order(seed):
    rng = random.Random(seed)
    rates = {
        "".join(rng.choices(string.ascii_lowercase, k=4)): rng.uniform(0, 9)
        for _ in range(rng.randint(2, 8))
    }
    base = _FakeScenario("s", 8.0, rates, ("a", "b"))
    reordered = _FakeScenario("s", 8.0, _shuffled_dict(rates, rng), ("a", "b"))
    assert scenario_fingerprint(base) == scenario_fingerprint(reordered)
    assert canonicalize(base) == canonicalize(reordered)


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprint_ignores_execution_knobs_but_not_physics(seed):
    rng = random.Random(seed)
    rates = {"chest": rng.uniform(0, 9)}
    base = _FakeScenario("s", 8.0, rates, ())
    execution_variant = _FakeScenario(
        "s", 8.0, dict(rates), (), n_jobs=8, cache_dir="/tmp/x"
    )
    physics_variant = _FakeScenario("s", 600.0, dict(rates), ())
    assert scenario_fingerprint(base) == scenario_fingerprint(execution_variant)
    assert scenario_fingerprint(base) != scenario_fingerprint(physics_variant)


def test_fingerprint_real_scenario_stable_and_jobs_free():
    """The real ScenarioParameters fingerprints identically across n_jobs
    and across repeated construction (no id()/hash leakage)."""
    from repro.experiments.scenario import make_scenario

    a = make_scenario("smoke", seed=0)
    b = make_scenario("smoke", seed=0, n_jobs=4)
    c = make_scenario("smoke", seed=0)
    assert scenario_fingerprint(a) == scenario_fingerprint(b)
    assert scenario_fingerprint(a) == scenario_fingerprint(c)
    assert scenario_fingerprint(a) != scenario_fingerprint(
        make_scenario("smoke", seed=1)
    )


def test_canonicalize_is_json_stable():
    """canonicalize output survives a JSON round trip unchanged —
    the property the on-disk fingerprint relies on."""
    from repro.experiments.scenario import make_scenario

    payload = canonicalize(make_scenario("smoke", seed=0))
    assert payload == json.loads(json.dumps(payload))
