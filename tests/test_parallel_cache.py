"""Tests for the parallel execution layer and the persistent result cache.

The two hard guarantees under test (see DESIGN.md §5):

* **Determinism under fan-out** — ``n_jobs=1`` and ``n_jobs=2`` produce
  bit-identical :class:`EvaluationRecord` metrics at both grain levels
  (whole configurations in ``evaluate_many``, replicates inside one
  ``evaluate``, fixed-count and adaptive protocols alike), because every
  replicate draws from disjoint ``(seed, replicate)`` RNG streams and
  aggregation happens in replicate-index order.
* **Warm-cache equivalence** — a cold-start oracle pointed at a warm disk
  cache returns records identical to the originals (floats survive the
  JSON round trip exactly) while running zero new simulations.
"""

import dataclasses

import pytest

from repro.core.design_space import Configuration, DesignSpace, PlacementConstraints
from repro.core.evaluator import SimulationOracle
from repro.core.parallel import (
    WorkerPool,
    adaptive_stop_count,
    resolve_jobs,
    run_adaptive_replicates,
)
from repro.core.problem import ScenarioParameters
from repro.core.result_cache import (
    ResultCache,
    record_from_dict,
    record_to_dict,
    scenario_fingerprint,
)
from repro.library.mac_options import MacKind, RoutingKind


def tiny_scenario(**overrides) -> ScenarioParameters:
    defaults = dict(tsim_s=2.0, replicates=1, seed=0)
    defaults.update(overrides)
    return ScenarioParameters(**defaults)


def tiny_space() -> DesignSpace:
    return DesignSpace(
        constraints=PlacementConstraints(max_nodes=4),
        tx_levels_dbm=(-10.0, 0.0),
    )


REFERENCE_CONFIG = Configuration((0, 1, 3, 5), 0.0, MacKind.TDMA, RoutingKind.STAR)


def assert_records_identical(a, b, compare_wall: bool = False):
    """Bit-for-bit equality of everything except (optionally) wall time,
    which legitimately differs between serial/parallel/cached runs."""
    assert a.config.key() == b.config.key()
    assert a.pdr == b.pdr
    assert a.power_mw == b.power_mw
    assert a.nlt_days == b.nlt_days
    oa, ob = a.outcome, b.outcome
    assert oa.pdr == ob.pdr
    assert oa.node_pdrs == ob.node_pdrs
    assert oa.node_powers_mw == ob.node_powers_mw
    assert oa.worst_power_mw == ob.worst_power_mw
    assert oa.nlt_days == ob.nlt_days
    assert oa.horizon_s == ob.horizon_s
    assert oa.totals == ob.totals
    assert oa.events_executed == ob.events_executed
    assert oa.replicates == ob.replicates
    assert oa.mean_latency_s == ob.mean_latency_s
    if compare_wall:
        assert a.wall_seconds == b.wall_seconds


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3

    def test_all_cores_and_joblib_negatives(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_jobs(0) == max(1, cores)
        assert resolve_jobs(-1) == max(1, cores)
        assert resolve_jobs(-cores - 5) == 1  # never below one worker

    def test_pool_serial_never_forks(self):
        pool = WorkerPool(1)
        assert not pool.parallel
        assert pool.map_ordered(abs, [-1, -2]) == [1, 2]
        assert pool._executor is None


class TestParallelDeterminism:
    def test_evaluate_many_bit_identical_across_n_jobs(self):
        scenario = tiny_scenario()
        configs = list(tiny_space().feasible_configurations())[:6]
        serial = SimulationOracle(scenario, n_jobs=1).evaluate_many(configs)
        with SimulationOracle(scenario, n_jobs=2) as oracle:
            parallel = oracle.evaluate_many(configs)
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            assert_records_identical(a, b)

    def test_replicate_grain_fixed_protocol_bit_identical(self):
        scenario = tiny_scenario(replicates=3)
        serial = SimulationOracle(scenario, n_jobs=1).evaluate(REFERENCE_CONFIG)
        with SimulationOracle(scenario, n_jobs=2) as oracle:
            parallel = oracle.evaluate(REFERENCE_CONFIG)
        assert serial.outcome.replicates == 3
        assert_records_identical(serial, parallel)

    def test_replicate_grain_adaptive_protocol_bit_identical(self):
        scenario = tiny_scenario(
            replicates=2,
            adaptive_replicates=True,
            pdr_epsilon=0.02,
            max_replicates=6,
        )
        serial = SimulationOracle(scenario, n_jobs=1).evaluate(REFERENCE_CONFIG)
        with SimulationOracle(scenario, n_jobs=2) as oracle:
            parallel = oracle.evaluate(REFERENCE_CONFIG)
        assert_records_identical(serial, parallel)

    def test_parallel_counters_match_serial(self):
        scenario = tiny_scenario()
        configs = list(tiny_space().feasible_configurations())[:4]
        batch = configs + [configs[0], configs[2]]  # duplicates hit cache
        serial = SimulationOracle(scenario, n_jobs=1)
        serial.evaluate_many(batch)
        with SimulationOracle(scenario, n_jobs=2) as parallel:
            parallel.evaluate_many(batch)
        assert parallel.simulations_run == serial.simulations_run == 4
        assert parallel.cache_hits == serial.cache_hits == 2


class TestAdaptiveAggregation:
    """Satellite fix: the averaged adaptive outcome must be a pure
    function of the replicate indices used, not of callback order."""

    def test_stop_count_is_prefix_rule(self):
        # Converges exactly at the first prefix whose CI is narrow enough.
        assert adaptive_stop_count([0.5, 0.5], epsilon=0.01, min_replicates=2) == 2
        assert adaptive_stop_count([0.4, 0.6], epsilon=0.01, min_replicates=2) is None
        # A later wave does not "unstop" an already-converged prefix.
        assert (
            adaptive_stop_count([0.5, 0.5, 0.1, 0.9], epsilon=0.01, min_replicates=2)
            == 2
        )

    def test_wave_size_does_not_change_outcome(self):
        scenario = tiny_scenario(
            replicates=2,
            adaptive_replicates=True,
            pdr_epsilon=0.02,
            max_replicates=6,
        )
        outcomes = [
            run_adaptive_replicates(scenario, REFERENCE_CONFIG, wave=w)
            for w in (1, 2, 5)
        ]
        for other in outcomes[1:]:
            assert other.pdr == outcomes[0].pdr
            assert other.worst_power_mw == outcomes[0].worst_power_mw
            assert other.replicates == outcomes[0].replicates
            assert other.node_pdrs == outcomes[0].node_pdrs

    def test_matches_legacy_sequential_protocol(self):
        """The explicit-outcome implementation reproduces what the old
        closure-based accumulator computed in its sequential call order."""
        from repro.analysis.convergence import estimate_pdr_with_tolerance
        from repro.core.parallel import replicate_job
        from repro.net.network import average_outcomes

        scenario = tiny_scenario(
            replicates=2,
            adaptive_replicates=True,
            pdr_epsilon=0.02,
            max_replicates=6,
        )
        collected = []

        def one_replicate(index):
            outcome = replicate_job(scenario, REFERENCE_CONFIG, index).run()
            collected.append(outcome)
            return outcome.pdr

        estimate_pdr_with_tolerance(
            one_replicate,
            epsilon=scenario.pdr_epsilon,
            min_replicates=max(2, scenario.replicates),
            max_replicates=scenario.max_replicates,
        )
        legacy = average_outcomes(collected, scenario.battery)
        current = run_adaptive_replicates(scenario, REFERENCE_CONFIG)
        assert current.pdr == legacy.pdr
        assert current.worst_power_mw == legacy.worst_power_mw
        assert current.replicates == legacy.replicates


class TestDiskCache:
    def test_warm_start_runs_zero_simulations(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        configs = list(tiny_space().feasible_configurations())[:4]

        cold = SimulationOracle(scenario)
        cold_records = cold.evaluate_many(configs)
        assert cold.simulations_run == 4

        warm = SimulationOracle(scenario)
        warm_records = warm.evaluate_many(configs)
        assert warm.simulations_run == 0
        assert warm.cache_hits == 4
        assert warm.disk_hits == 4
        for a, b in zip(cold_records, warm_records):
            assert_records_identical(a, b, compare_wall=True)

    def test_warm_start_parallel_also_zero_simulations(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        configs = list(tiny_space().feasible_configurations())[:4]
        SimulationOracle(scenario).evaluate_many(configs)
        with SimulationOracle(scenario, n_jobs=2) as warm:
            warm.evaluate_many(configs)
            assert warm.simulations_run == 0
            assert warm.disk_hits == 4

    def test_fingerprint_separates_scenarios(self, tmp_path):
        base = tiny_scenario(cache_dir=str(tmp_path))
        longer = dataclasses.replace(base, tsim_s=3.0)
        assert scenario_fingerprint(base) != scenario_fingerprint(longer)

        SimulationOracle(base).evaluate(REFERENCE_CONFIG)
        other = SimulationOracle(longer)
        other.evaluate(REFERENCE_CONFIG)
        assert other.simulations_run == 1  # no cross-contamination
        assert other.disk_hits == 0

    def test_fingerprint_ignores_execution_knobs(self, tmp_path):
        base = tiny_scenario()
        assert scenario_fingerprint(base) == scenario_fingerprint(
            dataclasses.replace(base, n_jobs=8, cache_dir=str(tmp_path))
        )

    def test_record_json_round_trip_is_lossless(self):
        scenario = tiny_scenario()
        record = SimulationOracle(scenario).evaluate(REFERENCE_CONFIG)
        clone = record_from_dict(record_to_dict(record))
        assert_records_identical(record, clone, compare_wall=True)

    def test_invalidate_clears_disk_and_memory(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        oracle = SimulationOracle(scenario)
        oracle.evaluate(REFERENCE_CONFIG)
        path = oracle.disk_cache.path
        assert path.exists()
        oracle.invalidate_cache()
        assert not path.exists()
        assert oracle.all_records == []
        oracle.evaluate(REFERENCE_CONFIG)
        assert oracle.simulations_run == 2  # re-simulated after invalidate

    def test_attach_cache_persists_existing_records(self, tmp_path):
        oracle = SimulationOracle(tiny_scenario())
        oracle.evaluate(REFERENCE_CONFIG)
        oracle.attach_cache(str(tmp_path))
        warm = SimulationOracle(tiny_scenario(cache_dir=str(tmp_path)))
        warm.evaluate(REFERENCE_CONFIG)
        assert warm.simulations_run == 0
        assert warm.disk_hits == 1

    def test_corrupt_lines_are_skipped(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        oracle = SimulationOracle(scenario)
        oracle.evaluate(REFERENCE_CONFIG)
        path = oracle.disk_cache.path
        with open(path, "a") as fh:
            fh.write("{not json\n")
            fh.write('{"valid_json": "but not a record"}\n')
        warm = SimulationOracle(scenario)
        warm.evaluate(REFERENCE_CONFIG)
        assert warm.simulations_run == 0
        assert warm.disk_hits == 1


class TestInsertionOrder:
    """``all_records`` lists distinct evaluations in first-request order,
    regardless of cache temperature or n_jobs — the Fig. 3 scatter must be
    stable across reruns."""

    def test_memory_hits_do_not_reorder(self):
        scenario = tiny_scenario()
        configs = list(tiny_space().feasible_configurations())[:3]
        oracle = SimulationOracle(scenario)
        oracle.evaluate_many(configs)
        oracle.evaluate(configs[2])
        oracle.evaluate(configs[0])
        assert [r.config.key() for r in oracle.all_records] == [
            c.key() for c in configs
        ]

    def test_disk_hits_enter_in_request_order(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        configs = list(tiny_space().feasible_configurations())[:3]
        SimulationOracle(scenario).evaluate_many(configs)

        warm = SimulationOracle(scenario)
        request_order = [configs[2], configs[0], configs[1]]
        for config in request_order:
            warm.evaluate(config)
        assert [r.config.key() for r in warm.all_records] == [
            c.key() for c in request_order
        ]

    def test_warm_cache_does_not_inject_foreign_records(self, tmp_path):
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        configs = list(tiny_space().feasible_configurations())[:4]
        SimulationOracle(scenario).evaluate_many(configs)

        warm = SimulationOracle(scenario)
        warm.evaluate(configs[1])
        assert len(warm.all_records) == 1  # only what was requested

    def test_order_identical_serial_vs_parallel(self, tmp_path):
        scenario = tiny_scenario()
        configs = list(tiny_space().feasible_configurations())[:5]
        serial = SimulationOracle(scenario, n_jobs=1)
        serial.evaluate_many(configs)
        with SimulationOracle(scenario, n_jobs=2) as parallel:
            parallel.evaluate_many(configs)
        assert [r.config.key() for r in serial.all_records] == [
            r.config.key() for r in parallel.all_records
        ]


class TestTelemetry:
    def test_stats_shape_and_hit_rate(self):
        scenario = tiny_scenario()
        oracle = SimulationOracle(scenario)
        configs = list(tiny_space().feasible_configurations())[:2]
        oracle.evaluate_many(configs)
        oracle.evaluate(configs[0])
        oracle.evaluate(configs[1])
        stats = oracle.stats()
        assert stats["simulations_run"] == 2
        assert stats["cache_hits"] == 2
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["disk_hits"] == 0
        assert 0.0 < stats["p50_wall_seconds"] <= stats["p95_wall_seconds"]
        assert stats["total_wall_seconds"] > 0
        assert stats["n_jobs"] == 1
        assert stats["speedup_vs_serial_estimate"] > 0
        line = oracle.format_stats()
        assert "2 simulations" in line and "hit rate" in line

    def test_reset_counters_clears_telemetry(self):
        oracle = SimulationOracle(tiny_scenario())
        oracle.evaluate(REFERENCE_CONFIG)
        oracle.reset_counters()
        stats = oracle.stats()
        assert stats["simulations_run"] == 0
        assert stats["total_wall_seconds"] == 0.0
        assert stats["p95_wall_seconds"] == 0.0

    def test_explorer_result_carries_oracle_stats(self):
        from repro.core.explorer import HumanIntranetExplorer
        from repro.core.problem import DesignProblem

        problem = DesignProblem(
            pdr_min=0.5, scenario=tiny_scenario(), space=tiny_space()
        )
        result = HumanIntranetExplorer(problem).explore()
        assert result.oracle_stats is not None
        assert result.oracle_stats["simulations_run"] == result.simulations_run
        assert "oracle_stats" in result.to_dict()


class TestScenarioAndCliKnobs:
    def test_scenario_carries_execution_knobs(self, tmp_path):
        scenario = tiny_scenario(n_jobs=2, cache_dir=str(tmp_path))
        with SimulationOracle(scenario) as oracle:
            assert oracle.n_jobs == 2
            assert oracle.disk_cache is not None

    def test_make_scenario_threads_knobs(self, tmp_path):
        from repro.experiments.scenario import make_problem, make_scenario

        scenario = make_scenario("smoke", n_jobs=2, cache_dir=str(tmp_path))
        assert scenario.n_jobs == 2
        assert scenario.cache_dir == str(tmp_path)
        problem = make_problem(0.5, "smoke", n_jobs=2, cache_dir=str(tmp_path))
        assert problem.scenario.n_jobs == 2

    def test_cli_accepts_jobs_and_cache_dir(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["solve", "--pdr-min", "90", "--jobs", "2",
             "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 2
        assert args.cache_dir == str(tmp_path)


class TestSelfHealingCache:
    """Satellite regression (DESIGN.md §9): cache damage is survivable.

    Torn tails, bit rot, and legacy formatting are quarantined to a
    sidecar and healed by atomic compaction — never fatal, and never
    silently wrong (the per-record CRC catches damage that still parses
    as JSON)."""

    def _warm_records(self, n=2):
        scenario = tiny_scenario()
        configs = list(tiny_space().feasible_configurations())[:n]
        return SimulationOracle(scenario).evaluate_many(configs)

    def test_encode_decode_round_trip(self):
        from repro.core.result_cache import decode_cache_line, encode_cache_line

        record = self._warm_records(1)[0]
        clone, is_legacy = decode_cache_line(encode_cache_line(record))
        assert not is_legacy
        assert_records_identical(record, clone, compare_wall=True)

    def test_truncation_at_every_byte_recovers_intact_prefix(self, tmp_path):
        """The satellite sweep: truncate a two-record cache file at every
        byte offset and assert lossless recovery of whatever prefix is
        still intact — the second record survives iff its line (sans the
        cosmetic trailing newline) survives, and loading never raises."""
        records = self._warm_records(2)
        reference = ResultCache(tmp_path / "ref", "fp")
        for record in records:
            reference.put(record)
        data = reference.path.read_bytes()
        first_len = data.index(b"\n") + 1

        for cut in range(len(data)):
            cache = ResultCache(tmp_path / f"cut{cut}", "fp")
            cache.path.parent.mkdir(exist_ok=True)
            cache.path.write_bytes(data[:cut])
            cache.load()
            if cut < first_len - 1:
                expected = 0
            elif cut < len(data) - 1:
                expected = 1
            else:
                expected = 2
            assert len(cache) == expected, f"truncation at byte {cut}"
            for original, recovered in zip(records, list(cache)):
                assert_records_identical(original, recovered, compare_wall=True)

    def test_bit_rot_is_quarantined_and_compacted(self, tmp_path):
        import json as _json

        records = self._warm_records(2)
        cache = ResultCache(tmp_path, "fp")
        for record in records:
            cache.put(record)
        lines = cache.path.read_text().splitlines()
        # valid JSON, wrong content: only the CRC can catch this
        lines[0] = lines[0].replace('"pdr"', '"qdr"', 1)
        cache.path.write_text("\n".join(lines) + "\n")

        healed = ResultCache(tmp_path, "fp")
        healed.load()
        assert len(healed) == 1
        assert healed.quarantined_lines == 1
        assert healed.compacted
        assert_records_identical(records[1], next(iter(healed)), compare_wall=True)
        sidecar = [
            _json.loads(line)
            for line in healed.quarantine_path.read_text().splitlines()
        ]
        assert len(sidecar) == 1
        assert sidecar[0]["line_number"] == 1
        assert sidecar[0]["reason"]
        assert sidecar[0]["line"] == lines[0]

        # the compacted file is clean: a reload quarantines nothing
        again = ResultCache(tmp_path, "fp")
        again.load()
        assert len(again) == 1
        assert again.quarantined_lines == 0
        assert not again.compacted

    def test_legacy_v1_lines_load_and_upgrade(self, tmp_path):
        from repro.core.result_cache import decode_cache_line

        record = self._warm_records(1)[0]
        cache = ResultCache(tmp_path, "fp")
        cache.path.parent.mkdir(exist_ok=True)
        import json as _json

        cache.path.write_text(_json.dumps(record_to_dict(record)) + "\n")
        cache.load()
        assert len(cache) == 1
        assert cache.compacted  # rewritten in the current envelope
        assert cache.quarantined_lines == 0
        first_line = cache.path.read_text().splitlines()[0]
        clone, is_legacy = decode_cache_line(first_line)
        assert not is_legacy
        assert_records_identical(record, clone, compare_wall=True)

    def test_oracle_survives_damaged_warm_cache(self, tmp_path):
        """End to end: a warm oracle pointed at a damaged cache re-runs
        only the lost record and never aborts."""
        scenario = tiny_scenario(cache_dir=str(tmp_path))
        configs = list(tiny_space().feasible_configurations())[:2]
        cold = SimulationOracle(scenario)
        cold_records = cold.evaluate_many(configs)
        path = cold.disk_cache.path
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-15]  # torn mid-file line
        path.write_text("\n".join(lines) + "\n")

        warm = SimulationOracle(scenario)
        warm_records = warm.evaluate_many(configs)
        assert warm.simulations_run == 1
        assert warm.disk_hits == 1
        for a, b in zip(cold_records, warm_records):
            assert_records_identical(a, b)


class TestResultCacheUnit:
    def test_put_is_idempotent_on_disk(self, tmp_path):
        scenario = tiny_scenario()
        record = SimulationOracle(scenario).evaluate(REFERENCE_CONFIG)
        cache = ResultCache(tmp_path, scenario_fingerprint(scenario))
        cache.put(record)
        cache.put(record)
        with open(cache.path) as fh:
            assert len(fh.readlines()) == 1
        assert len(cache) == 1

    def test_missing_directory_is_created_lazily(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        scenario = tiny_scenario(cache_dir=str(target))
        assert not target.exists()
        SimulationOracle(scenario).evaluate(REFERENCE_CONFIG)
        assert target.exists()
