"""Fault-tolerant worker-pool tests: crash, hang, poison, degradation.

The contract under test (DESIGN.md §9): because every pool task is a
pure function of its description, worker crashes, hung workers, poison
tasks, and serial degradation must be invisible in the *results* — the
output stays bit-identical to the serial path — and visible only in the
``pool.*`` metrics and trace events.

Worker crashes are real: the chaos hook in ``repro.core.parallel`` makes
a worker die with ``os._exit`` mid-batch (see the ``crash_worker``
fixture), exactly what a segfault or OOM kill looks like to the parent.
"""

import json
import multiprocessing
import os
import time

from repro.core.parallel import WorkerPool
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    TraceWriter,
    read_trace,
    runtime,
)

from tests.test_golden_trace import GOLDEN_PATH, run_reference

#: Generous deadline for the hung-worker test: long enough that a healthy
#: loaded CI runner finishes every honest task well inside it, short
#: enough that the test stays fast.
HANG_TIMEOUT_S = 5.0


def _square(task):
    return task * task


def _sleep_while_flagged(task):
    """Hang (once) if the task carries a live flag file.

    The first worker to execute the flagged task claims the flag and then
    sleeps far past any deadline — a wedged worker.  After the pool kills
    it and retries, the flag is gone and the task completes instantly, so
    the test is deterministic: exactly one hang, then recovery.
    """
    if isinstance(task, tuple):
        value, flag = task
        try:
            os.unlink(flag)
        except OSError:
            return _square(value)
        time.sleep(600.0)
    return _square(task)


def _exit_in_worker(task):
    """Poison: kills any *worker* that touches it; harmless in the
    parent process (where quarantine and degraded execution run)."""
    if multiprocessing.parent_process() is not None:
        os._exit(29)
    return _square(task)


def _exit_poison_task(task):
    """Poison only the marked task; other tasks are honest work."""
    if task == "poison":
        if multiprocessing.parent_process() is not None:
            os._exit(31)
        return "quarantined"
    return _square(task)


def _observed(trace_path):
    """Instrumentation that is both explicit and ambient, so ``pool.*``
    events/counters emitted via ``runtime.get_active()`` land in it."""
    tracer = TraceWriter(trace_path)
    return Instrumentation(MetricsRegistry(), tracer), tracer


# ---------------------------------------------------------------------------
# unit layer: WorkerPool.map_ordered under injected faults
# ---------------------------------------------------------------------------


def test_chaos_crash_is_retried_and_results_are_exact(crash_worker):
    flag = crash_worker(nth=1)
    with WorkerPool(2, backoff_base_s=0.001) as pool:
        results = pool.map_ordered(_square, list(range(8)))
    assert results == [i * i for i in range(8)]
    assert not flag.exists(), "chaos crash never fired"
    assert pool.retries >= 1
    assert pool.respawns >= 1
    assert not pool.degraded


def test_hung_worker_hits_deadline_and_recovers(tmp_path):
    flag = tmp_path / "hang.flag"
    flag.write_text("armed")
    tasks = [0, 1, (2, str(flag)), 3, 4]
    with WorkerPool(
        2, task_timeout_s=HANG_TIMEOUT_S, backoff_base_s=0.001
    ) as pool:
        results = pool.map_ordered(_sleep_while_flagged, tasks)
    assert results == [0, 1, 4, 9, 16]
    assert not flag.exists()
    assert pool.retries >= 1
    assert pool.respawns >= 1
    assert not pool.degraded


def test_poison_task_is_quarantined_to_parent(tmp_path):
    trace = tmp_path / "pool.jsonl"
    obs, tracer = _observed(trace)
    tasks = [1, "poison", 3, 4, 5]
    with tracer, runtime.activate(obs):
        with WorkerPool(
            2, quarantine_after=2, max_respawns=8, backoff_base_s=0.001
        ) as pool:
            results = pool.map_ordered(_exit_poison_task, tasks)
    assert results == [1, "quarantined", 9, 16, 25]
    assert pool.quarantined >= 1
    assert not pool.degraded
    assert obs.counter("pool.quarantined").value >= 1
    kinds = {ev["kind"] for ev in read_trace(trace)}
    assert {"pool.retry", "pool.respawn", "pool.quarantine"} <= kinds


def test_unrecoverable_pool_degrades_to_serial_loudly(tmp_path, capfd):
    trace = tmp_path / "pool.jsonl"
    obs, tracer = _observed(trace)
    tasks = list(range(6))
    with tracer, runtime.activate(obs):
        with WorkerPool(
            2, quarantine_after=100, max_respawns=1, backoff_base_s=0.001
        ) as pool:
            results = pool.map_ordered(_exit_in_worker, tasks)
    assert results == [i * i for i in tasks]
    assert pool.degraded
    # degradation is sticky: later batches go straight to the serial path
    assert pool.map_ordered(_square, [7, 8]) == [49, 64]
    assert "DEGRADED TO SERIAL" in capfd.readouterr().err
    kinds = {ev["kind"] for ev in read_trace(trace)}
    assert "pool.degraded" in kinds


def test_resilience_counters_reach_ambient_metrics(crash_worker, tmp_path):
    """The satellite metrics contract: pool.retries / pool.respawns are
    visible on the ambient instrumentation, with matching trace events."""
    crash_worker(nth=1)
    trace = tmp_path / "pool.jsonl"
    obs, tracer = _observed(trace)
    with tracer, runtime.activate(obs):
        with WorkerPool(2, backoff_base_s=0.001) as pool:
            pool.map_ordered(_square, list(range(6)))
    assert obs.counter("pool.retries").value >= 1
    assert obs.counter("pool.respawns").value >= 1
    events = [ev for ev in read_trace(trace) if ev["kind"] == "pool.retry"]
    assert events and all("tasks" in ev for ev in events)


# ---------------------------------------------------------------------------
# integration layer: worker crash mid-exploration is bit-invisible
# ---------------------------------------------------------------------------


def test_explore_bit_identical_after_worker_crash(crash_worker, tmp_path):
    """SIGKILL-grade worker loss during a parallel campaign must not
    perturb the golden trajectory: retry/respawn re-runs the lost tasks,
    whose outcomes are pure functions of their descriptions."""
    flag = crash_worker(nth=2)
    sequence = run_reference(tmp_path / "crash.jsonl", n_jobs=2)
    assert not flag.exists(), "chaos crash never fired"
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sequence == golden
