"""Property-based tests (hypothesis) on core data structures and models.

These encode the invariants the reproduction's correctness rests on:
algebraic laws of the expression layer, agreement between the solvers,
conservation laws of the flooding mechanics, estimator bounds, and the
analytical model's internal consistency.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.design_space import Configuration, DesignSpace, PlacementConstraints
from repro.core.power_model import CoarsePowerModel
from repro.library.batteries import CR2032
from repro.library.mac_options import MacKind, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.milp import Model, solve_with_scipy
from repro.milp.expr import LinExpr
from repro.net.app import AppParameters
from repro.net.packet import Packet
from repro.net.stats import NetworkStats

# -- strategies ---------------------------------------------------------------

coeffs = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


@st.composite
def placements(draw):
    """Constraint-satisfying placements of the design example."""
    cons = PlacementConstraints()
    chosen = {0}
    chosen.add(draw(st.sampled_from([1, 2])))
    chosen.add(draw(st.sampled_from([3, 4])))
    chosen.add(draw(st.sampled_from([5, 6])))
    extras = draw(st.sets(st.integers(1, 9), max_size=2))
    for loc in extras:
        if len(chosen) < cons.max_nodes:
            chosen.add(loc)
    return tuple(sorted(chosen))


@st.composite
def configurations(draw):
    # Routing kinds restricted to the paper's default space (the P2P
    # extension lives in custom spaces and has its own tests).
    return Configuration(
        placement=draw(placements()),
        tx_dbm=draw(st.sampled_from([-20.0, -10.0, 0.0])),
        mac=draw(st.sampled_from(list(MacKind))),
        routing=draw(st.sampled_from([RoutingKind.STAR, RoutingKind.MESH])),
    )


# -- LinExpr algebra ------------------------------------------------------------


class TestLinExprLaws:
    @given(a=coeffs, b=coeffs, c=coeffs)
    def test_distributivity_of_scaling(self, a, b, c):
        m = Model("h")
        x, y = m.add_var("x"), m.add_var("y")
        left = c * (a * x + b * y)
        right = (c * a) * x + (c * b) * y
        point = {x.index: 1.7, y.index: -0.3}
        assert left.evaluate(point) == pytest.approx(
            right.evaluate(point), abs=1e-6
        )

    @given(values=st.lists(coeffs, min_size=1, max_size=8))
    def test_sum_of_matches_fold(self, values):
        m = Model("h")
        xs = [m.add_var(f"x{i}") for i in range(len(values))]
        expr_sum = LinExpr.sum_of(v * x for v, x in zip(values, xs))
        folded = LinExpr()
        for v, x in zip(values, xs):
            folded = folded + v * x
        assert expr_sum.terms == pytest.approx(folded.terms)

    @given(a=coeffs)
    def test_negation_is_involution(self, a):
        m = Model("h")
        x = m.add_var("x")
        expr = a * x + 3.0
        back = -(-expr)
        assert back.terms == pytest.approx(expr.terms)
        assert back.constant == pytest.approx(expr.constant)


# -- MILP solver agreement ---------------------------------------------------------


class TestSolverAgreement:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_binary_models_match_scipy(self, data):
        n = data.draw(st.integers(2, 6))
        m = Model("h", sense=data.draw(st.sampled_from(["min", "max"])))
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        obj_coeffs = data.draw(
            st.lists(st.integers(-5, 5), min_size=n, max_size=n)
        )
        m.set_objective(LinExpr.sum_of(c * x for c, x in zip(obj_coeffs, xs)))
        row = data.draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n))
        rhs = data.draw(st.integers(-2, n))
        try:
            m.add_constraint(
                LinExpr.sum_of(c * x for c, x in zip(row, xs)) <= rhs
            )
        except ValueError:
            # All-zero row with an unsatisfiable constant: the model layer
            # rejects this at construction by design (a modeling bug, not
            # a solve outcome).
            assume(False)

        ours = m.solve()
        ref = solve_with_scipy(m)
        assert ours.status == ref.status
        if ours.is_optimal:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


# -- flooding conservation ---------------------------------------------------------


class TestFloodingLaws:
    @given(
        n=st.integers(4, 8),
        hops=st.integers(1, 4),
    )
    def test_retx_count_equals_ring_recurrence(self, n, hops):
        opts = RoutingOptions(kind=RoutingKind.MESH, max_hops=hops)
        # Independent recurrence: ring_k = ring_{k-1} * (n - 1 - k).
        total, ring = 1, 1
        for k in range(1, hops + 1):
            ring *= max(0, n - 1 - k)
            total += ring
        assert opts.retx_count(n) == max(1, total)

    @given(n=st.integers(4, 10))
    def test_two_hop_matches_paper_quadratic(self, n):
        opts = RoutingOptions(kind=RoutingKind.MESH, max_hops=2)
        assert opts.retx_count(n) == n * n - 4 * n + 5

    @given(
        origin=st.integers(0, 9),
        relays=st.lists(st.integers(0, 9), max_size=4, unique=True),
    )
    def test_packet_history_grows_monotonically(self, origin, relays):
        packet = Packet(
            origin=origin, seq=0, destination=(origin + 1) % 10,
            length_bytes=10,
        ).originated()
        history = {origin}
        for relay in relays:
            packet = packet.relayed_by(relay)
            history.add(relay)
            assert packet.visited == frozenset(history)
        assert packet.hops_used == len(relays)


# -- PDR estimator bounds ------------------------------------------------------------


class TestPdrEstimatorLaws:
    @given(data=st.data())
    @settings(max_examples=50)
    def test_pdr_always_within_unit_interval(self, data):
        locations = data.draw(
            st.lists(st.integers(0, 9), min_size=2, max_size=5, unique=True)
        )
        stats = NetworkStats(locations)
        for i in locations:
            for k in locations:
                if i == k:
                    continue
                sent = data.draw(st.integers(0, 20))
                received = data.draw(st.integers(0, sent) if sent else st.just(0))
                for s in range(sent):
                    stats.node(i).record_sent(k)
                for r in range(received):
                    stats.node(k).record_delivery(i, (i, 1000 * k + r), 0.0)
        for k in locations:
            assert 0.0 <= stats.node_pdr(k) <= 1.0
        assert 0.0 <= stats.network_pdr() <= 1.0

    @given(data=st.data())
    def test_network_pdr_is_mean_of_node_pdrs(self, data):
        locations = [0, 1, 2]
        stats = NetworkStats(locations)
        for i in locations:
            for k in locations:
                if i == k:
                    continue
                sent = data.draw(st.integers(1, 10))
                received = data.draw(st.integers(0, sent))
                for s in range(sent):
                    stats.node(i).record_sent(k)
                for r in range(received):
                    stats.node(k).record_delivery(i, (i, 100 * k + r), 0.0)
        mean = sum(stats.node_pdr(k) for k in locations) / len(locations)
        assert stats.network_pdr() == pytest.approx(mean)


# -- analytical model consistency -------------------------------------------------------


class TestPowerModelLaws:
    MODEL = CoarsePowerModel(CC2650, AppParameters(), CR2032)

    @given(config=configurations())
    def test_power_positive_and_lifetime_inverse(self, config):
        routing = RoutingOptions(
            kind=config.routing, coordinator=0, max_hops=2
        )
        mode = CC2650.tx_mode_by_dbm(config.tx_dbm)
        power = self.MODEL.node_power_mw(routing, config.num_nodes, mode)
        assert power > 0
        days = self.MODEL.lifetime_days(routing, config.num_nodes, mode)
        assert days == pytest.approx(CR2032.lifetime_days(power))

    @given(config=configurations(), pdr=st.floats(0.0, 1.0))
    def test_alpha_bound_sandwich(self, config, pdr):
        routing = RoutingOptions(kind=config.routing, coordinator=0, max_hops=2)
        mode = CC2650.tx_mode_by_dbm(config.tx_dbm)
        p_bar = self.MODEL.node_power_mw(routing, config.num_nodes, mode)
        lb = self.MODEL.power_lower_bound_mw(p_bar, pdr)
        assert 0.1 - 1e-12 <= lb <= p_bar + 1e-12

    @given(config=configurations())
    def test_configuration_on_grid(self, config):
        assert DesignSpace().contains(config)


# -- configuration normalization -----------------------------------------------------------


class TestConfigurationLaws:
    @given(
        placement=st.lists(st.integers(0, 9), min_size=2, max_size=8),
        tx=st.sampled_from([-20.0, -10.0, 0.0]),
    )
    def test_placement_always_sorted_unique(self, placement, tx):
        config = Configuration(
            tuple(placement), tx, MacKind.CSMA, RoutingKind.STAR
        )
        assert list(config.placement) == sorted(set(placement))

    @given(config=configurations())
    def test_key_roundtrip_identity(self, config):
        clone = Configuration(
            config.placement, config.tx_dbm, config.mac, config.routing
        )
        assert clone.key() == config.key()
        assert clone == config
