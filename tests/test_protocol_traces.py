"""Protocol-level integration tests using the structured event trace.

The TraceLog records PHY events (tx start, rx, collision) during a run;
these tests assert protocol invariants the aggregate counters cannot
distinguish — e.g. *who* transmitted and in which order — closing the gap
between unit tests of single layers and the metric-level integration
tests.
"""

import pytest

from repro.channel.fading import FadingParameters
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.network import Network

QUIET = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)


def traced_network(routing, mac, placement=(0, 1, 2), tx_dbm=0.0, seed=0):
    return Network(
        placement=placement,
        radio_spec=CC2650,
        tx_mode=CC2650.tx_mode_by_dbm(tx_dbm),
        mac_options=MacOptions(kind=mac),
        routing_options=RoutingOptions(kind=routing, coordinator=0, max_hops=2),
        app_params=AppParameters(),
        fading_params=QUIET,
        seed=seed,
        trace=True,
    )


class TestTdmaSlotDiscipline:
    def test_transmissions_start_only_on_own_slots(self):
        network = traced_network(RoutingKind.STAR, MacKind.TDMA)
        network.run(tsim_s=2.0)
        slot_s = network.mac_options.slot_s
        placement = network.placement
        frame = len(placement) * slot_s
        slot_of = {loc: placement.index(loc) for loc in placement}
        starts = network.trace.by_category("phy_tx_start")
        assert starts
        for event in starts:
            sender = event.payload["sender"]
            offset = event.time % frame
            expected = slot_of[sender] * slot_s
            # Circular distance: float modulo can report an offset of
            # (frame - epsilon) for a boundary-exact time.
            distance = min(
                abs(offset - expected),
                frame - abs(offset - expected),
            )
            assert distance < 1e-9, (
                f"sender {sender} transmitted at frame offset {offset}"
            )

    def test_no_phy_collisions_under_tdma(self):
        network = traced_network(RoutingKind.MESH, MacKind.TDMA,
                                 placement=(0, 1, 2, 5))
        network.run(tsim_s=2.0)
        assert network.trace.count("phy_collision") == 0


class TestStarRelayDiscipline:
    def test_every_noncoordinator_payload_relayed_exactly_once(self):
        network = traced_network(RoutingKind.STAR, MacKind.TDMA)
        network.run(tsim_s=2.0)
        starts = network.trace.by_category("phy_tx_start")
        # Coordinator transmissions = its own payloads + relays; count
        # relays via the stats layer and cross-check against the trace.
        coor_tx = sum(1 for e in starts if e.payload["sender"] == 0)
        own_payloads = network.nodes[0].app.packets_generated
        relays = network.stats.node(0).relays
        assert coor_tx == own_payloads + relays
        # On a clean channel every non-coordinator payload not addressed
        # to the coordinator is relayed exactly once.
        expected_relays = 0
        for loc in (1, 2):
            sent = network.stats.node(loc).sent
            expected_relays += sum(
                count for dst, count in sent.items() if dst != 0
            )
        assert relays == expected_relays

    def test_relay_follows_original_in_time(self):
        network = traced_network(RoutingKind.STAR, MacKind.TDMA)
        network.run(tsim_s=1.0)
        starts = network.trace.by_category("phy_tx_start")
        # For each packet string containing "1->2", the coordinator's copy
        # (sender 0) must appear after node 1's original.
        first_original = None
        first_relay = None
        for event in starts:
            if "1->2" in event.payload["packet"]:
                if event.payload["sender"] == 1 and first_original is None:
                    first_original = event.time
                if event.payload["sender"] == 0 and first_relay is None:
                    first_relay = event.time
        assert first_original is not None and first_relay is not None
        assert first_relay > first_original


class TestCsmaSerialization:
    def test_no_overlapping_transmissions_within_carrier_range(self):
        """With every node in carrier-sense range on a clean channel,
        non-persistent CSMA must serialize the medium (collisions possible
        only within the tiny vulnerable window; at this load none occur
        for this seed)."""
        network = traced_network(RoutingKind.STAR, MacKind.CSMA,
                                 placement=(0, 1, 2), seed=3)
        network.run(tsim_s=2.0)
        airtime = CC2650.packet_airtime_s(100)
        starts = sorted(
            e.time for e in network.trace.by_category("phy_tx_start")
        )
        overlaps = sum(
            1 for a, b in zip(starts, starts[1:]) if b - a < airtime * 0.999
        )
        # Allow the rare vulnerable-window overlap but not systematic ones.
        assert overlaps <= len(starts) * 0.02

    def test_collision_events_recorded_when_forced(self):
        """Two hidden-ish senders forced to start simultaneously produce
        collision records at the common receiver."""
        from repro.des.rng import RngStreams
        from repro.channel.link import Channel
        from repro.net.radio import Medium, Radio
        from repro.net.packet import Packet
        from repro.net.stats import NodeStats
        from repro.des.engine import Simulator

        sim = Simulator()
        channel = Channel(RngStreams(seed=0), fading_params=QUIET)
        from repro.des.monitor import TraceLog

        trace = TraceLog(enabled=True)
        medium = Medium(sim, channel, trace)
        radios = {}
        for loc in (0, 1, 2):
            radios[loc] = Radio(
                sim, medium, loc, CC2650, CC2650.tx_mode_by_dbm(0.0),
                NodeStats(loc),
            )
        pkt1 = Packet(origin=1, seq=0, destination=0, length_bytes=100).originated()
        pkt2 = Packet(origin=2, seq=0, destination=0, length_bytes=100).originated()
        sim.schedule(0.0, radios[1].transmit, pkt1)
        sim.schedule(0.0, radios[2].transmit, pkt2)
        sim.run()
        assert trace.count("phy_collision") >= 1


class TestFloodTraceShape:
    def test_flood_transmission_cascade_ordering(self):
        """Every relayed copy's transmission must start after the original
        broadcast of the same payload."""
        network = traced_network(RoutingKind.MESH, MacKind.CSMA,
                                 placement=(0, 1, 2, 5), seed=2)
        network.run(tsim_s=0.5)
        starts = network.trace.by_category("phy_tx_start")
        first_seen = {}
        for event in starts:
            packet_repr = event.payload["packet"]
            key = packet_repr.split(" hops=")[0]  # origin->dst seq=k
            if "hops=0" in packet_repr:
                first_seen.setdefault(key, event.time)
            else:
                assert key in first_seen
                assert event.time > first_seen[key]
