"""Stress and failure-injection tests.

The reproduction must degrade gracefully at the edges a production user
will hit: saturated channels, near-permanent outage, overflowing MAC
buffers, and event volumes far beyond the nominal workload.  None of these
may crash, corrupt the accounting identities, or produce out-of-range
metrics.
"""

import pytest

from repro.channel.fading import FadingParameters
from repro.des.engine import Simulator
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.network import Network


def run_network(
    fading=None,
    mac=MacKind.CSMA,
    routing=RoutingKind.MESH,
    app=None,
    placement=(0, 1, 3, 6),
    buffer_size=32,
    tsim=5.0,
    seed=0,
):
    network = Network(
        placement=placement,
        radio_spec=CC2650,
        tx_mode=CC2650.tx_mode_by_dbm(0.0),
        mac_options=MacOptions(kind=mac, buffer_size=buffer_size),
        routing_options=RoutingOptions(kind=routing, coordinator=0, max_hops=2),
        app_params=app or AppParameters(),
        fading_params=fading,
        seed=seed,
    )
    return network, network.run(tsim_s=tsim)


class TestChannelBlackout:
    def test_near_permanent_outage_survives(self):
        """Half the time every node is 30 dB down: the network barely
        delivers anything but all metrics stay in range."""
        blackout = FadingParameters(
            sigma_db=6.0, shadow_fraction=0.5, shadow_depth_db=30.0
        )
        _network, outcome = run_network(fading=blackout)
        assert 0.0 <= outcome.pdr < 0.9
        assert outcome.worst_power_mw > 0
        assert outcome.nlt_days > 0

    def test_outage_reduces_power_not_increases(self):
        quiet = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)
        blackout = FadingParameters(
            sigma_db=0.0, shadow_fraction=0.9, shadow_depth_db=40.0
        )
        _n1, clean = run_network(fading=quiet)
        _n2, dark = run_network(fading=blackout)
        assert dark.pdr < clean.pdr
        # Undelivered packets spawn no relays and wake no receivers.
        assert dark.worst_power_mw < clean.worst_power_mw


class TestOverload:
    def test_traffic_beyond_tdma_capacity_drops_but_survives(self):
        """A 4-node TDMA frame carries 250 pkt/s per node at 1 ms slots;
        offering far more must overflow the MAC buffer, not the process."""
        heavy = AppParameters(throughput_pps=400.0)
        network, outcome = run_network(
            mac=MacKind.TDMA, routing=RoutingKind.MESH, app=heavy,
            buffer_size=8, tsim=2.0,
        )
        assert outcome.totals["buffer_drops"] > 0
        assert 0.0 <= outcome.pdr <= 1.0

    def test_csma_hidden_terminal_collisions_recorded(self):
        """With zero propagation delay, carrier sensing eliminates the
        classic vulnerable window; collisions arise from *hidden
        terminals*.  At -20 dBm the hip and the back cannot sense each
        other (the hip-back link loses ~86 dB) while both reach the chest,
        so saturating them must produce collisions at the chest."""
        # Saturate past the channel capacity so both hidden senders hold
        # permanent backlogs and transmit back to back (periodic traffic at
        # moderate load phase-locks and can legitimately avoid overlap).
        heavy = AppParameters(throughput_pps=600.0)
        network = Network(
            placement=(0, 1, 9),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(-20.0),
            mac_options=MacOptions(kind=MacKind.CSMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR,
                                           coordinator=0),
            app_params=heavy,
            fading_params=FadingParameters(sigma_db=0.0, shadow_fraction=0.0),
            seed=0,
        )
        outcome = network.run(tsim_s=2.0)
        assert outcome.totals["collisions_seen"] > 0
        assert 0.0 <= outcome.pdr <= 1.0

    def test_tiny_buffer_harsher_than_large(self):
        heavy = AppParameters(throughput_pps=300.0)
        _n1, small = run_network(
            mac=MacKind.TDMA, app=heavy, buffer_size=2, tsim=2.0
        )
        _n2, large = run_network(
            mac=MacKind.TDMA, app=heavy, buffer_size=64, tsim=2.0
        )
        assert small.totals["buffer_drops"] >= large.totals["buffer_drops"]


class TestEngineVolume:
    def test_hundred_thousand_events(self):
        sim = Simulator()
        count = [0]

        def tick(remaining):
            count[0] += 1
            if remaining:
                sim.schedule(1e-4, tick, remaining - 1)

        for lane in range(10):
            sim.schedule(lane * 1e-5, tick, 9999)
        sim.run()
        assert count[0] == 100_000
        assert sim.events_executed == 100_000

    def test_long_horizon_simulation_metrics_stable(self):
        """A longer horizon must refine, not distort, the estimators."""
        quiet = FadingParameters(sigma_db=0.0, shadow_fraction=0.0)
        _n1, short = run_network(
            fading=quiet, routing=RoutingKind.STAR, mac=MacKind.TDMA,
            placement=(0, 1, 2), tsim=2.0,
        )
        _n2, long = run_network(
            fading=quiet, routing=RoutingKind.STAR, mac=MacKind.TDMA,
            placement=(0, 1, 2), tsim=20.0,
        )
        assert long.pdr == pytest.approx(short.pdr, abs=0.02)
        assert long.worst_power_mw == pytest.approx(
            short.worst_power_mw, rel=0.10
        )


class TestDegenerateScenarios:
    def test_two_node_network(self):
        _network, outcome = run_network(
            placement=(0, 1), routing=RoutingKind.STAR, mac=MacKind.TDMA
        )
        assert outcome.pdr > 0.9  # chest-hip is a strong link

    def test_all_ten_locations(self):
        _network, outcome = run_network(
            placement=tuple(range(10)), routing=RoutingKind.MESH,
            mac=MacKind.TDMA, tsim=2.0,
        )
        assert 0.0 <= outcome.pdr <= 1.0
        assert outcome.totals["transmissions"] > 0

    def test_minimal_throughput(self):
        slow = AppParameters(throughput_pps=0.5)
        _network, outcome = run_network(app=slow, tsim=8.0)
        assert 0.0 <= outcome.pdr <= 1.0
