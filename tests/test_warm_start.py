"""Warm-started simplex and the Dantzig→Bland anti-cycling switch.

The warm-start contract is behavioural: with or without a warm basis the
solver must return the *same* verdict and optimum (warm starting is a
pure speedup).  These tests drive the contract at three levels — a single
LP re-solved after an rhs change, the branch-and-bound solver across
parent→child bound changes, and the full Algorithm-1 formulation over
randomized tightening-cut sequences.
"""

import math

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.simplex import (
    LinearProgram,
    SimplexSolver,
    SimplexStatus,
    solve_lp,
)


def lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None, c0=0.0):
    c = np.asarray(c, dtype=float)
    n = len(c)
    return LinearProgram(
        c=c,
        a_ub=np.asarray(a_ub if a_ub is not None else np.zeros((0, n))),
        b_ub=np.asarray(b_ub if b_ub is not None else np.zeros(0)),
        a_eq=np.asarray(a_eq if a_eq is not None else np.zeros((0, n))),
        b_eq=np.asarray(b_eq if b_eq is not None else np.zeros(0)),
        bounds=np.asarray(
            bounds if bounds is not None else [[0.0, math.inf]] * n
        ),
        c0=c0,
    )


class TestBlandAntiCycling:
    """Degenerate problems must terminate under the Bland switch."""

    # Beale's classic cycling example: Dantzig's most-negative rule can
    # cycle forever on this highly degenerate LP.
    BEALE = dict(
        c=[-0.75, 150.0, -0.02, 6.0],
        a_ub=[
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ],
        b_ub=[0.0, 0.0, 1.0],
    )

    def test_beale_terminates_and_matches_scipy(self):
        result = solve_lp(lp(**self.BEALE))
        assert result.status is SimplexStatus.OPTIMAL
        ref = linprog(
            self.BEALE["c"], A_ub=self.BEALE["a_ub"], b_ub=self.BEALE["b_ub"],
            bounds=[(0, None)] * 4, method="highs",
        )
        assert result.objective == pytest.approx(ref.fun, abs=1e-9)

    def test_immediate_bland_switch_agrees_with_dantzig(self):
        """Forcing Bland's rule from the first degenerate pivot must not
        change the optimum, only the pivot path."""
        eager = SimplexSolver(bland_threshold=1).solve(lp(**self.BEALE))
        default = solve_lp(lp(**self.BEALE))
        assert eager.status is SimplexStatus.OPTIMAL
        assert eager.objective == pytest.approx(default.objective, abs=1e-12)

    def test_degenerate_random_lps_terminate_under_eager_bland(self):
        """Randomized degenerate LPs (duplicated rows, zero rhs) solved
        with an immediate Bland switch agree with scipy."""
        rng = np.random.default_rng(7)
        solver = SimplexSolver(bland_threshold=1)
        for _ in range(20):
            n = int(rng.integers(2, 5))
            m = int(rng.integers(1, 4))
            a = rng.integers(-2, 3, size=(m, n)).astype(float)
            a = np.vstack([a, a])  # duplicated rows force degeneracy
            b = np.concatenate([np.zeros(m), np.zeros(m)])
            c = rng.integers(-3, 4, size=n).astype(float)
            result = solver.solve(lp(c, a_ub=a, b_ub=b))
            ref = linprog(
                c, A_ub=a, b_ub=b, bounds=[(0, None)] * n, method="highs"
            )
            # x = 0 is always feasible here, so the only legal verdicts
            # are optimal and unbounded (termination is Bland's guarantee).
            assert result.status in (
                SimplexStatus.OPTIMAL, SimplexStatus.UNBOUNDED,
            )
            if result.status is SimplexStatus.OPTIMAL:
                assert ref.status == 0
                assert result.objective == pytest.approx(ref.fun, abs=1e-7)
            else:
                assert ref.status == 3


class TestSimplexWarmStart:
    def _base(self):
        # min -x - 2y s.t. x + y <= 4, x + 3y <= 9
        return dict(
            c=[-1.0, -2.0],
            a_ub=[[1.0, 1.0], [1.0, 3.0]],
            bounds=[[0.0, 10.0], [0.0, 10.0]],
        )

    def test_rhs_change_warm_solve_matches_cold(self):
        solver = SimplexSolver()
        first = solver.solve(lp(b_ub=[4.0, 9.0], **self._base()), want_basis=True)
        assert first.status is SimplexStatus.OPTIMAL
        assert first.basis is not None

        tightened = lp(b_ub=[3.0, 9.0], **self._base())
        warm = solver.solve(tightened, warm_start=first.basis)
        cold = solver.solve(tightened)
        assert warm.status is SimplexStatus.OPTIMAL
        assert warm.warm_started
        assert warm.objective == cold.objective  # bitwise, not approx
        assert np.array_equal(warm.x, cold.x)

    def test_signature_mismatch_falls_back_cold(self):
        solver = SimplexSolver()
        first = solver.solve(lp(b_ub=[4.0, 9.0], **self._base()), want_basis=True)
        other = lp(
            [-1.0, -2.0, 0.0],
            a_ub=[[1.0, 1.0, 0.0], [1.0, 3.0, 1.0]],
            b_ub=[4.0, 9.0],
            bounds=[[0.0, 10.0]] * 3,
        )
        result = solver.solve(other, warm_start=first.basis)
        assert result.status is SimplexStatus.OPTIMAL
        assert not result.warm_started

    def test_warm_start_on_infeasible_tightening(self):
        """Tightening the rhs to infeasibility must be detected on the
        warm path (or via its cold fallback) exactly like cold."""
        base = dict(
            c=[1.0],
            a_ub=[[-1.0]],  # -x <= b  i.e. x >= -b
            bounds=[[0.0, 2.0]],
        )
        solver = SimplexSolver()
        first = solver.solve(lp(b_ub=[-1.0], **base), want_basis=True)
        assert first.status is SimplexStatus.OPTIMAL
        infeasible = lp(b_ub=[-3.0], **base)  # x >= 3 with x <= 2
        warm = solver.solve(infeasible, warm_start=first.basis)
        cold = solver.solve(infeasible)
        assert warm.status is cold.status is SimplexStatus.INFEASIBLE

    def test_randomized_rhs_sequences_warm_equals_cold(self):
        """Random walks over the rhs, warm-starting each solve from the
        previous basis, agree with cold solves throughout.  (Up to an ulp:
        the two pivot paths accumulate round-off differently; exact
        equality is only promised at the MILP level, where incumbents are
        rounded integer points — see TestBranchAndBoundWarmStart.)"""
        rng = np.random.default_rng(11)
        solver = SimplexSolver()
        for _ in range(10):
            n = int(rng.integers(2, 5))
            m = int(rng.integers(2, 5))
            a = rng.normal(size=(m, n)).round(2)
            c = rng.normal(size=n).round(2)
            b = (np.abs(rng.normal(size=m)) + 1.0).round(2)
            bounds = [[0.0, 5.0]] * n
            basis = None
            for _step in range(6):
                problem = lp(c, a_ub=a, b_ub=b.copy(), bounds=bounds)
                warm = solver.solve(problem, warm_start=basis, want_basis=True)
                cold = solver.solve(problem)
                assert warm.status is cold.status
                if warm.status is SimplexStatus.OPTIMAL:
                    assert warm.objective == pytest.approx(
                        cold.objective, rel=1e-12, abs=1e-12
                    )
                basis = warm.basis
                b[int(rng.integers(0, m))] -= float(
                    np.abs(rng.normal()) * 0.1
                )


class TestBranchAndBoundWarmStart:
    def _model(self, cut_mw=None):
        from repro.experiments.scenario import make_problem
        from repro.core.milp_builder import MilpFormulation

        form = MilpFormulation(make_problem(pdr_min=0.9, preset="ci"))
        model, _ = form.build([cut_mw] if cut_mw is not None else [])
        return form, model

    def test_warm_solver_matches_cold_over_tightening_cuts(self):
        form, _ = self._model()
        warm_solver = BranchAndBoundSolver(use_warm_starts=True)
        cold_solver = BranchAndBoundSolver(use_warm_starts=False)
        basis = None
        cuts = []
        for _ in range(4):
            model_w, _ = form.build(cuts)
            model_c, _ = form.build(cuts)
            warm = warm_solver.solve(model_w, root_warm_start=basis)
            cold = cold_solver.solve(model_c)
            assert warm.status is cold.status
            assert warm.objective == cold.objective  # bitwise
            if not warm.is_optimal:
                break
            basis = warm.root_basis
            cuts = [warm.objective]

    def test_warm_lp_solves_counted(self):
        # Adding a cut row changes the standard-form signature, so the
        # warmable sequence is one-cut model → one-cut model (the steady
        # state of Algorithm 1's loop, and what the bench measures).
        form, _ = self._model()
        probe = BranchAndBoundSolver(use_warm_starts=False)
        base = probe.solve(form.build([])[0])
        assert base.is_optimal
        solver = BranchAndBoundSolver(use_warm_starts=True)
        first = solver.solve(form.build([base.objective])[0])
        assert first.is_optimal
        second = solver.solve(
            form.build([first.objective])[0],
            root_warm_start=first.root_basis,
        )
        assert second.warm_lp_solves > 0

    def test_randomized_cut_sequences_warm_equals_cold(self):
        """Random (not just monotone) cut sequences: every solve must
        agree with a cold solver bit for bit."""
        form, _ = self._model()
        rng = np.random.default_rng(3)
        probe = BranchAndBoundSolver(use_warm_starts=False)
        base = probe.solve(form.build([])[0])
        assert base.is_optimal
        lo, hi = base.objective, base.objective + 0.4

        warm_solver = BranchAndBoundSolver(use_warm_starts=True)
        basis = None
        for _ in range(6):
            cut = float(rng.uniform(lo, hi))
            model_w, _ = form.build([cut])
            model_c, _ = form.build([cut])
            warm = warm_solver.solve(model_w, root_warm_start=basis)
            cold = probe.solve(model_c)
            assert warm.status is cold.status
            assert warm.objective == cold.objective
            basis = warm.root_basis if warm.is_optimal else None
