"""Cross-campaign wearer-result cache: fingerprints, store, integrity.

The cache's correctness rests on two claims this module pins directly:

1. :func:`~repro.campaign.wearer_cache.wearer_fingerprint` hashes
   exactly the result-relevant wearer fields — labels (``wearer_id``,
   ``cohort``) stay out, robust-mode knobs enter only in robust mode —
   so two campaigns naming the same wearer differently share an entry;
2. the summary bytes really are label-free: a real campaign run with
   two wearers that differ *only* in their labels produces byte-
   identical summary projections, which is what makes claim 1 safe.

Everything else is the store discipline: first-writer-wins idempotent
puts, loud divergence, quarantine-on-damage (a flipped bit costs a
re-simulation, never a wrong result).
"""

import dataclasses
import json

import pytest

from repro.campaign.spec import CampaignSpec, WearerSpec
from repro.campaign.wearer_cache import (
    WearerCacheDiverged,
    WearerResultCache,
    summary_crc,
    wearer_fingerprint,
)
from repro.core.journal import summary_projection


def _wearer(**overrides):
    base = dict(wearer_id="w0", seed=11, pdr_min=0.92)
    base.update(overrides)
    return WearerSpec(**base)


def _summary(tag="a"):
    return {
        "status": "infeasible",
        "best": None,
        "oracle_stats": {"simulations_run": 3, "cache_hits": 1},
        "tag": tag,
    }


class TestFingerprint:
    def test_stable_across_calls_and_instances(self):
        a = wearer_fingerprint("smoke", _wearer())
        b = wearer_fingerprint("smoke", _wearer())
        assert a == b
        assert len(a) == 16 and all(c in "0123456789abcdef" for c in a)

    def test_labels_do_not_enter_the_fingerprint(self):
        base = wearer_fingerprint("smoke", _wearer())
        renamed = wearer_fingerprint(
            "smoke", _wearer(wearer_id="other-name", cohort="clinic-b")
        )
        assert renamed == base

    def test_result_relevant_fields_all_enter(self):
        base = wearer_fingerprint("smoke", _wearer())
        assert wearer_fingerprint("ci", _wearer()) != base
        assert wearer_fingerprint("smoke", _wearer(seed=12)) != base
        assert wearer_fingerprint("smoke", _wearer(pdr_min=0.93)) != base
        assert (
            wearer_fingerprint("smoke", _wearer(mode="robust")) != base
        )

    def test_robust_knobs_ignored_in_solve_mode(self):
        # `solve` never reads the ensemble knobs, so they must not split
        # the cache key; in `robust` mode every one of them must.
        base = wearer_fingerprint("smoke", _wearer())
        assert (
            wearer_fingerprint("smoke", _wearer(ensemble_size=9))
            == base
        )
        robust = wearer_fingerprint("smoke", _wearer(mode="robust"))
        assert (
            wearer_fingerprint(
                "smoke", _wearer(mode="robust", ensemble_size=9)
            )
            != robust
        )
        assert (
            wearer_fingerprint(
                "smoke", _wearer(mode="robust", quantile=0.5)
            )
            != robust
        )

    def test_default_fault_seed_normalizes_to_wearer_seed(self):
        # The runner builds the fault ensemble from `fault_seed or seed`,
        # so the spelled-out and defaulted forms are the same ensemble
        # and must share one cache entry.
        spelled = wearer_fingerprint(
            "smoke", _wearer(mode="robust", fault_seed=11)
        )
        defaulted = wearer_fingerprint(
            "smoke", _wearer(mode="robust", fault_seed=None)
        )
        assert spelled == defaulted
        assert (
            wearer_fingerprint(
                "smoke", _wearer(mode="robust", fault_seed=12)
            )
            != spelled
        )


class TestSummaryBytesAreLabelFree:
    def test_renamed_wearer_produces_identical_summary_bytes(
        self, tmp_path
    ):
        """The physical claim behind cache sharing: two wearers that
        differ only in their labels simulate to byte-identical summary
        projections, so serving one's cached bytes as the other's
        summary is exact, not approximate."""
        from repro.campaign.runner import run_campaign
        from repro.core.journal import SUMMARY_FILENAME

        twins = CampaignSpec(
            name="twins",
            preset="smoke",
            wearers=(
                _wearer(wearer_id="alpha", cohort="a"),
                _wearer(wearer_id="beta", cohort="b"),
            ),
        )
        run_campaign(twins, tmp_path / "twins", jobs=1)
        blobs = {}
        for wid in ("alpha", "beta"):
            (path,) = (tmp_path / "twins").glob(
                f"shards/*/{wid}/{SUMMARY_FILENAME}"
            )
            blobs[wid] = json.dumps(
                summary_projection(json.loads(path.read_text())),
                sort_keys=True,
            )
        assert blobs["alpha"] == blobs["beta"]


class TestStore:
    def test_put_get_roundtrip_is_the_projection(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        summary = _summary()
        assert cache.put("ab12", summary) is True
        assert cache.get("ab12") == summary_projection(summary)
        assert len(cache) == 1

    def test_put_is_first_writer_wins_idempotent(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        cache.put("ab12", _summary())
        assert cache.put("ab12", _summary()) is False  # identical: no-op

    def test_divergent_put_raises(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        cache.put("ab12", _summary("a"))
        with pytest.raises(WearerCacheDiverged):
            cache.put("ab12", _summary("b"))
        # the original bytes survived the attempt
        assert cache.get("ab12") == summary_projection(_summary("a"))

    def test_damaged_entry_quarantined_and_reported_as_miss(
        self, tmp_path
    ):
        cache = WearerResultCache(tmp_path / "wc")
        cache.put("ab12", _summary())
        path = cache.path_for("ab12")
        path.write_text(path.read_text()[:-10] + "corrupted!")
        assert cache.get("ab12") is None
        assert not path.exists()
        assert path.with_suffix(".json.quarantine").exists()
        # and the slot is usable again
        assert cache.put("ab12", _summary()) is True

    def test_bad_fingerprint_refused_before_touching_disk(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        for bad in ("", "../escape", "UPPER", "has space"):
            with pytest.raises(ValueError):
                cache.path_for(bad)

    def test_prefetch_maps_only_hits(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        hot = _wearer(wearer_id="hot")
        cold = _wearer(wearer_id="cold", seed=99)
        cache.put(wearer_fingerprint("smoke", hot), _summary())
        out = cache.prefetch("smoke", [hot, cold.to_dict()])
        assert set(out) == {"hot"}
        assert out["hot"] == summary_projection(_summary())

    def test_summary_crc_matches_projection_not_raw(self):
        summary = _summary()
        decorated = dict(summary, transient_note="dropped by projection")
        if summary_projection(decorated) == summary_projection(summary):
            assert summary_crc(decorated) == summary_crc(summary)


class TestBoundedCache:
    """PR 10 caps: the store stays under ``max_bytes``/``max_entries``
    by LRU eviction, and eviction is always recoverable — an evicted
    entry is a clean miss that re-fills with byte-identical content."""

    def test_entry_cap_evicts_least_recently_used(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc", max_entries=2)
        cache.put("aa01", _summary("one"))
        cache.put("aa02", _summary("two"))
        # touch aa01 so aa02 becomes the LRU victim
        assert cache.get("aa01") is not None
        cache.put("aa03", _summary("three"))
        assert len(cache) == 2
        assert cache.get("aa02") is None
        assert cache.get("aa01") == summary_projection(_summary("one"))
        assert cache.get("aa03") == summary_projection(_summary("three"))

    def test_byte_cap_holds_under_fill_past_capacity(self, tmp_path):
        probe = WearerResultCache(tmp_path / "probe")
        probe.put("aa00", _summary("x" * 64))
        entry_bytes = probe.total_bytes()

        cache = WearerResultCache(
            tmp_path / "wc", max_bytes=entry_bytes * 3
        )
        for i in range(10):
            cache.put(f"bb{i:02d}", _summary("x" * 64))
            assert cache.total_bytes() <= entry_bytes * 3
        assert len(cache) == 3
        # the newest writes are the survivors
        for i in range(7, 10):
            assert cache.get(f"bb{i:02d}") is not None

    def test_eviction_never_removes_the_fresh_write(self, tmp_path):
        # cap of one entry: each put may evict everything *except* what
        # it just wrote
        cache = WearerResultCache(tmp_path / "wc", max_entries=1)
        cache.put("aa01", _summary("one"))
        cache.put("aa02", _summary("two"))
        assert cache.get("aa01") is None
        assert cache.get("aa02") == summary_projection(_summary("two"))

    def test_evicted_entry_refills_with_identical_bytes(self, tmp_path):
        # the correctness story for eviction racing a prefetch: a worker
        # holding a stale prefetch pointer sees a miss, re-simulates,
        # and the re-put stores byte-identical content — first-writer-
        # wins never fires a divergence for a re-computed entry
        cache = WearerResultCache(tmp_path / "wc", max_entries=1)
        cache.put("aa01", _summary("one"))
        original = cache.path_for("aa01").read_bytes()
        cache.put("aa02", _summary("two"))  # evicts aa01 mid-"flight"
        assert cache.get("aa01") is None  # clean miss, not an error
        assert cache.put("aa01", _summary("one")) is True  # re-simulated
        assert cache.path_for("aa01").read_bytes() == original

    def test_index_survives_restart_and_rebuilds_when_lost(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc", max_entries=2)
        cache.put("aa01", _summary("one"))
        cache.put("aa02", _summary("two"))

        # restart with the persisted index: recency order carries over
        reopened = WearerResultCache(tmp_path / "wc", max_entries=2)
        assert reopened.get("aa01") is not None  # aa01 now MRU
        reopened.put("aa03", _summary("three"))
        assert reopened.get("aa02") is None
        assert reopened.get("aa01") is not None

        # corrupt the index outright: the store rebuilds from the files
        reopened.index_path.write_text("{ not json")
        rebuilt = WearerResultCache(tmp_path / "wc", max_entries=2)
        assert len(rebuilt) == 2
        rebuilt.put("aa04", _summary("four"))
        assert len(rebuilt) == 2  # cap still enforced after rebuild

    def test_unbounded_by_default(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc")
        for i in range(20):
            cache.put(f"cc{i:02d}", _summary(str(i)))
        assert len(cache) == 20

    def test_index_file_is_not_an_entry(self, tmp_path):
        cache = WearerResultCache(tmp_path / "wc", max_entries=4)
        cache.put("aa01", _summary("one"))
        assert len(cache) == 1
        assert cache.index_path.exists()


def test_fingerprint_survives_spec_roundtrip():
    # Wire form (to_dict/from_dict, how wearers travel inside leases)
    # must fingerprint identically to the in-memory form.
    wearer = _wearer(mode="robust", fault_seed=None)
    revived = WearerSpec.from_dict(wearer.to_dict())
    assert dataclasses.asdict(revived) == dataclasses.asdict(wearer)
    assert wearer_fingerprint("ci", revived) == wearer_fingerprint(
        "ci", wearer
    )
